"""Synthetic stand-in for the Airbnb listings dataset.

Table II: 27 597 records, 33 encoded attributes, protected attribute =
host gender (inferred from first names in the original; sampled here),
ranking variable = rating/price desirability score.

Queries are (city, neighbourhood, home-type) combinations — the paper
filtered to 43 queries with at least 10 listings; the ranking pipeline
applies the same filter.  The deserved score is only partially
predictable from the listed features (hidden quality + noise), which
reproduces the paper's moderate Full-Data ranking utility on Airbnb
(MAP ~ 0.68) as opposed to Xing's perfect score recovery.
"""

from __future__ import annotations

import numpy as np

from repro.data.generator import LatentFactorSampler
from repro.data.schema import Attribute, DatasetSchema, TabularDataset
from repro.exceptions import ValidationError
from repro.utils.rng import RandomStateLike

N_CITIES = 5
N_NEIGHBORHOODS = 10
N_HOME_TYPES = 3


def airbnb_schema() -> DatasetSchema:
    """Raw attribute layout for :func:`generate_airbnb` (33 encoded)."""
    return DatasetSchema(
        name="airbnb",
        attributes=(
            Attribute("price", "numeric"),
            Attribute("cleaning_fee", "numeric"),
            Attribute("accommodates", "numeric"),
            Attribute("bedrooms", "numeric"),
            Attribute("bathrooms", "numeric"),
            Attribute("minimum_nights", "numeric"),
            Attribute("number_of_reviews", "numeric"),
            Attribute("review_cleanliness", "numeric"),
            Attribute("review_location", "numeric"),
            Attribute("review_value", "numeric"),
            Attribute("host_listings_count", "numeric"),
            Attribute("availability_365", "numeric"),
            Attribute("host_response_rate", "numeric"),
            Attribute("city", "categorical", N_CITIES),
            Attribute("neighbourhood", "categorical", N_NEIGHBORHOODS),
            Attribute("home_type", "categorical", N_HOME_TYPES),
            Attribute("host_gender_protected", "categorical", 2, protected=True),
        ),
    )


def generate_airbnb(
    n_records: int = 27597,
    *,
    random_state: RandomStateLike = 0,
) -> TabularDataset:
    """Generate the synthetic Airbnb dataset with query ids."""
    if n_records < 30:
        raise ValidationError("n_records must be at least 30")
    schema = airbnb_schema()
    sampler = LatentFactorSampler(random_state)
    z = sampler.latent(n_records, n_factors=2)  # factor 0: listing quality
    s = sampler.protected_groups(z, prevalence=0.47, correlation=0.30)

    price = sampler.numeric_attribute(
        z, s, loading=35.0, group_shift=-8.0, noise=40.0, offset=120.0, clip_min=10.0
    )
    cleaning = sampler.numeric_attribute(
        z, s, loading=10.0, group_shift=-2.0, noise=15.0, offset=40.0, clip_min=0.0
    )
    accommodates = sampler.numeric_attribute(
        z, s, loading=0.8, group_shift=0.0, noise=1.2, offset=3.2, clip_min=1.0
    )
    bedrooms = sampler.numeric_attribute(
        z, s, loading=0.5, group_shift=0.0, noise=0.7, offset=1.5, clip_min=0.0
    )
    bathrooms = sampler.numeric_attribute(
        z, s, loading=0.3, group_shift=0.0, noise=0.4, offset=1.2, clip_min=0.5
    )
    min_nights = sampler.numeric_attribute(
        z, s, loading=-0.5, group_shift=0.2, noise=2.0, factor=1, offset=3.0, clip_min=1.0
    )
    n_reviews = sampler.numeric_attribute(
        z, s, loading=12.0, group_shift=2.0, noise=20.0, offset=30.0, clip_min=0.0
    )
    rev_clean = sampler.numeric_attribute(
        z, s, loading=0.5, group_shift=0.05, noise=0.4, offset=9.0, clip_min=2.0
    )
    rev_loc = sampler.numeric_attribute(
        z, s, loading=0.4, group_shift=0.0, noise=0.5, factor=1, offset=9.0, clip_min=2.0
    )
    rev_value = sampler.numeric_attribute(
        z, s, loading=0.5, group_shift=0.05, noise=0.4, offset=9.0, clip_min=2.0
    )
    host_listings = sampler.numeric_attribute(
        z, s, loading=1.0, group_shift=-0.5, noise=3.0, factor=1, offset=3.0, clip_min=1.0
    )
    availability = sampler.numeric_attribute(
        z, s, loading=-20.0, group_shift=5.0, noise=80.0, factor=1, offset=180.0, clip_min=0.0
    )
    response_rate = sampler.numeric_attribute(
        z, s, loading=3.0, group_shift=0.5, noise=6.0, offset=92.0, clip_min=0.0
    )
    city = sampler.categorical_attribute(s, N_CITIES, group_skew=0.1)
    neighbourhood = sampler.categorical_attribute(
        s, N_NEIGHBORHOODS, group_skew=0.7, z=z, latent_skew=0.8
    )
    home_type = sampler.categorical_attribute(s, N_HOME_TYPES, group_skew=0.5)

    X = np.hstack(
        [
            np.column_stack(
                [
                    price,
                    cleaning,
                    accommodates,
                    bedrooms,
                    bathrooms,
                    min_nights,
                    n_reviews,
                    rev_clean,
                    rev_loc,
                    rev_value,
                    host_listings,
                    availability,
                    response_rate,
                ]
            ),
            sampler.one_hot(city, N_CITIES),
            sampler.one_hot(neighbourhood, N_NEIGHBORHOODS),
            sampler.one_hot(home_type, N_HOME_TYPES),
            sampler.one_hot(s.astype(np.intp), 2),
        ]
    )

    # Deserved score: quality-driven, but with hidden components so even
    # the full data cannot rank perfectly.
    hidden = sampler.rng.standard_normal(n_records)
    score = (
        0.8 * z[:, 0]
        + 0.1 * (rev_clean + rev_value) / 2.0
        - 0.002 * price
        - 0.12 * s
        + 0.6 * hidden
    )

    query_ids = (
        city * (N_NEIGHBORHOODS * N_HOME_TYPES)
        + neighbourhood * N_HOME_TYPES
        + home_type
    )

    return TabularDataset(
        name="airbnb",
        X=X,
        y=score,
        protected=s,
        protected_indices=np.asarray(schema.protected_encoded_indices),
        feature_names=schema.encoded_feature_names,
        task="ranking",
        query_ids=query_ids,
    )
