"""The Section IV synthetic study data (Figure 2).

100 points with two real-valued non-sensitive attributes X1, X2 drawn
from a two-component Gaussian mixture — (i) isotropic with unit
variance, (ii) correlated with covariance 0.95 — plus one binary
protected attribute A assigned by one of three rules:

* ``random`` — A = 1 with probability 0.3;
* ``x1``     — A = 1 iff X1 <= 3;
* ``x2``     — A = 1 iff X2 <= 3.

The class label Y is the mixture component, so all three variants share
X1, X2 and Y and differ only in group membership — exactly the setup
used to show that iFair representations are insensitive to the
protected attribute.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.data.schema import TabularDataset
from repro.exceptions import ValidationError
from repro.utils.rng import RandomStateLike, check_random_state


class SyntheticVariant(enum.Enum):
    """How the protected attribute A is assigned."""

    RANDOM = "random"
    X1 = "x1"
    X2 = "x2"


_MEAN_ISO = np.array([2.5, 2.0])
_MEAN_CORR = np.array([4.5, 4.0])
_COV_ISO = np.eye(2)
_COV_CORR = np.array([[1.0, 0.95], [0.95, 1.0]])


def generate_synthetic(
    variant: SyntheticVariant = SyntheticVariant.RANDOM,
    n_records: int = 100,
    *,
    mix: float = 0.5,
    random_state: RandomStateLike = 0,
) -> TabularDataset:
    """Generate one Figure-2 dataset variant.

    Parameters
    ----------
    variant:
        Protected-attribute assignment rule (see module docstring).
    n_records:
        Number of points (the paper uses 100).
    mix:
        Fraction of points from the correlated component (class Y=1).
    random_state:
        Seed for reproducibility.

    Returns
    -------
    A :class:`TabularDataset` whose X has columns [X1, X2, A] with A
    (index 2) marked protected, y = mixture component, and
    ``protected`` = A.
    """
    if isinstance(variant, str):
        variant = SyntheticVariant(variant)
    if n_records < 4:
        raise ValidationError("n_records must be at least 4")
    if not 0.0 < mix < 1.0:
        raise ValidationError("mix must lie in (0, 1)")
    rng = check_random_state(random_state)
    n_corr = int(round(n_records * mix))
    n_iso = n_records - n_corr
    X_iso = rng.multivariate_normal(_MEAN_ISO, _COV_ISO, size=n_iso)
    X_corr = rng.multivariate_normal(_MEAN_CORR, _COV_CORR, size=n_corr)
    X2d = np.vstack([X_iso, X_corr])
    y = np.concatenate([np.zeros(n_iso), np.ones(n_corr)])
    perm = rng.permutation(n_records)
    X2d, y = X2d[perm], y[perm]

    if variant is SyntheticVariant.RANDOM:
        a = (rng.random(n_records) < 0.3).astype(np.float64)
    elif variant is SyntheticVariant.X1:
        a = (X2d[:, 0] <= 3.0).astype(np.float64)
    else:
        a = (X2d[:, 1] <= 3.0).astype(np.float64)

    X = np.column_stack([X2d, a])
    return TabularDataset(
        name=f"synthetic-{variant.value}",
        X=X,
        y=y,
        protected=a,
        protected_indices=np.array([2]),
        feature_names=["X1", "X2", "A"],
        task="classification",
    )


def all_variants(
    n_records: int = 100, random_state: RandomStateLike = 0
) -> Tuple[TabularDataset, TabularDataset, TabularDataset]:
    """The three Figure-2 rows, sharing a base seed."""
    return tuple(
        generate_synthetic(variant, n_records, random_state=random_state)
        for variant in SyntheticVariant
    )
