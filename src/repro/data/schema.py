"""Dataset schema objects and the in-memory dataset container.

A :class:`DatasetSchema` describes raw attributes (before one-hot
unfolding); a :class:`TabularDataset` is the fully encoded matrix with
outcome/protected metadata that the experiment pipeline consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import SchemaError, ValidationError


@dataclass(frozen=True)
class Attribute:
    """One raw attribute of a dataset schema.

    ``kind`` is ``'numeric'`` or ``'categorical'``; categorical
    attributes carry their level count and unfold into that many
    indicator columns.
    """

    name: str
    kind: str
    n_categories: int = 0
    protected: bool = False

    def __post_init__(self):
        if self.kind not in ("numeric", "categorical"):
            raise SchemaError(f"unknown attribute kind {self.kind!r}")
        if self.kind == "categorical" and self.n_categories < 2:
            raise SchemaError(
                f"categorical attribute {self.name!r} needs >= 2 categories"
            )
        if self.kind == "numeric" and self.n_categories:
            raise SchemaError(f"numeric attribute {self.name!r} cannot have categories")

    @property
    def encoded_width(self) -> int:
        """Number of columns this attribute contributes after encoding."""
        return self.n_categories if self.kind == "categorical" else 1


@dataclass(frozen=True)
class DatasetSchema:
    """An ordered collection of attributes."""

    name: str
    attributes: tuple

    def __post_init__(self):
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in schema {self.name!r}")
        if not self.attributes:
            raise SchemaError("schema needs at least one attribute")

    @property
    def encoded_width(self) -> int:
        """Total encoded (post one-hot) dimensionality."""
        return sum(a.encoded_width for a in self.attributes)

    @property
    def protected_attributes(self) -> List[Attribute]:
        return [a for a in self.attributes if a.protected]

    def encoded_indices_of(self, attribute_name: str) -> List[int]:
        """Encoded column range contributed by one raw attribute."""
        offset = 0
        for attr in self.attributes:
            width = attr.encoded_width
            if attr.name == attribute_name:
                return list(range(offset, offset + width))
            offset += width
        raise SchemaError(f"no attribute named {attribute_name!r}")

    @property
    def protected_encoded_indices(self) -> List[int]:
        """All encoded columns belonging to protected attributes."""
        out: List[int] = []
        for attr in self.protected_attributes:
            out.extend(self.encoded_indices_of(attr.name))
        return out

    @property
    def encoded_feature_names(self) -> List[str]:
        """Column names after one-hot unfolding, in encoding order."""
        names: List[str] = []
        for attr in self.attributes:
            if attr.kind == "numeric":
                names.append(attr.name)
            else:
                names.extend(
                    f"{attr.name}={i}" for i in range(attr.n_categories)
                )
        return names


@dataclass
class TabularDataset:
    """A fully encoded dataset ready for the experiment pipeline.

    Attributes
    ----------
    name: dataset identifier (e.g. ``'compas'``).
    X: encoded feature matrix, shape (n_records, encoded_width).
    y: outcome — binary labels for classification, real scores for
       ranking tasks.
    protected: 0/1 group membership per record (the group used in
       group-fairness reporting).
    protected_indices: encoded columns carrying protected attributes.
    feature_names: encoded column names.
    task: ``'classification'`` or ``'ranking'``.
    query_ids: per-record query id (ranking datasets only).
    """

    name: str
    X: np.ndarray
    y: np.ndarray
    protected: np.ndarray
    protected_indices: np.ndarray
    feature_names: List[str] = field(default_factory=list)
    task: str = "classification"
    query_ids: Optional[np.ndarray] = None

    def __post_init__(self):
        self.X = np.asarray(self.X, dtype=np.float64)
        self.y = np.asarray(self.y, dtype=np.float64).ravel()
        self.protected = np.asarray(self.protected, dtype=np.float64).ravel()
        self.protected_indices = np.asarray(self.protected_indices, dtype=np.intp)
        if self.X.ndim != 2:
            raise ValidationError("X must be 2-D")
        n = self.X.shape[0]
        if self.y.size != n or self.protected.size != n:
            raise ValidationError("X, y and protected must agree on record count")
        if self.task not in ("classification", "ranking"):
            raise ValidationError("task must be 'classification' or 'ranking'")
        if self.query_ids is not None:
            self.query_ids = np.asarray(self.query_ids, dtype=np.intp).ravel()
            if self.query_ids.size != n:
                raise ValidationError("query_ids must have one entry per record")

    @property
    def n_records(self) -> int:
        return self.X.shape[0]

    @property
    def n_features(self) -> int:
        return self.X.shape[1]

    @property
    def nonprotected_indices(self) -> np.ndarray:
        """Complement of :attr:`protected_indices`."""
        mask = np.ones(self.n_features, dtype=bool)
        mask[self.protected_indices] = False
        return np.flatnonzero(mask)

    @property
    def X_nonprotected(self) -> np.ndarray:
        """Records restricted to non-protected columns (the x* space)."""
        return self.X[:, self.nonprotected_indices]

    def base_rate(self, group: int) -> float:
        """Positive-outcome rate within a protected group (0 or 1).

        Only meaningful for classification tasks.
        """
        if self.task != "classification":
            raise ValidationError("base_rate is defined for classification tasks")
        mask = self.protected == group
        if not np.any(mask):
            raise ValidationError(f"no records with protected == {group}")
        return float(self.y[mask].mean())

    def subset(self, indices) -> "TabularDataset":
        """A new dataset restricted to ``indices`` (rows)."""
        idx = np.asarray(indices, dtype=np.intp)
        return TabularDataset(
            name=self.name,
            X=self.X[idx],
            y=self.y[idx],
            protected=self.protected[idx],
            protected_indices=self.protected_indices.copy(),
            feature_names=list(self.feature_names),
            task=self.task,
            query_ids=None if self.query_ids is None else self.query_ids[idx],
        )
