"""Latent-factor sampling machinery shared by all dataset generators.

Every synthetic dataset follows the same causal template:

1. a latent qualification/desirability factor ``z ~ N(0, 1)`` per
   record (optionally several factors);
2. a protected group indicator ``s`` drawn to hit a target prevalence,
   correlated with some latent factor to create *proxy* structure;
3. numeric attributes = linear loadings on ``z`` + group shift + noise;
4. categorical attributes sampled from group- and latent-dependent
   multinomials (so one-hot blocks also leak group information);
5. outcomes assigned by thresholding a qualification score *within each
   group* at the documented base rate, plus label noise — this yields
   feature-correlated labels with exact Table II base rates.

The result reproduces the phenomenon the paper depends on: removing the
protected column is not enough, because proxies remain.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import RandomStateLike, check_random_state


class LatentFactorSampler:
    """Stateful sampler bound to one RNG.

    All methods draw from ``self.rng``; constructing with a fixed seed
    makes an entire dataset reproducible.
    """

    def __init__(self, random_state: RandomStateLike = 0):
        self.rng = check_random_state(random_state)

    # -- latent structure ------------------------------------------------

    def latent(self, n_records: int, n_factors: int = 1) -> np.ndarray:
        """Standard-normal latent factors, shape (n_records, n_factors)."""
        if n_records < 1 or n_factors < 1:
            raise ValidationError("n_records and n_factors must be positive")
        return self.rng.standard_normal((n_records, n_factors))

    def protected_groups(
        self, z: np.ndarray, prevalence: float, correlation: float = 0.0
    ) -> np.ndarray:
        """0/1 group labels with target prevalence, optionally tied to z.

        ``correlation`` in [-1, 1] tilts membership probability with the
        first latent factor, creating proxy structure; 0 gives an
        independent Bernoulli draw.
        """
        if not 0.0 < prevalence < 1.0:
            raise ValidationError("prevalence must lie in (0, 1)")
        if not -1.0 <= correlation <= 1.0:
            raise ValidationError("correlation must lie in [-1, 1]")
        n = z.shape[0]
        noise = self.rng.standard_normal(n)
        score = correlation * z[:, 0] + np.sqrt(max(0.0, 1 - correlation**2)) * noise
        threshold = np.quantile(score, 1.0 - prevalence)
        return (score > threshold).astype(np.float64)

    # -- attribute synthesis ----------------------------------------------

    def numeric_attribute(
        self,
        z: np.ndarray,
        s: np.ndarray,
        *,
        loading: float = 1.0,
        group_shift: float = 0.0,
        noise: float = 1.0,
        factor: int = 0,
        scale: float = 1.0,
        offset: float = 0.0,
        clip_min: Optional[float] = None,
    ) -> np.ndarray:
        """A numeric column: latent loading + group shift + Gaussian noise."""
        n = z.shape[0]
        col = (
            loading * z[:, factor]
            + group_shift * s
            + noise * self.rng.standard_normal(n)
        )
        col = offset + scale * col
        if clip_min is not None:
            col = np.maximum(col, clip_min)
        return col

    def categorical_attribute(
        self,
        s: np.ndarray,
        n_categories: int,
        *,
        group_skew: float = 0.0,
        z: Optional[np.ndarray] = None,
        latent_skew: float = 0.0,
        factor: int = 0,
    ) -> np.ndarray:
        """Category codes with group- and latent-dependent distributions.

        Each group gets its own multinomial: a shared Dirichlet-ish base
        distribution tilted by ``group_skew`` (0 = identical groups,
        1 = strongly divergent).  ``latent_skew`` additionally shifts
        the preferred category with the latent factor, so categories
        carry qualification signal as well as group signal.
        """
        if n_categories < 2:
            raise ValidationError("need at least 2 categories")
        if not 0.0 <= group_skew <= 1.0:
            raise ValidationError("group_skew must lie in [0, 1]")
        n = s.shape[0]
        base = self.rng.dirichlet(np.ones(n_categories))
        tilt = self.rng.dirichlet(np.ones(n_categories))
        probs1 = (1.0 - group_skew) * base + group_skew * tilt
        codes = np.empty(n, dtype=np.intp)
        for group, probs in ((0.0, base), (1.0, probs1)):
            mask = s == group
            count = int(mask.sum())
            if count:
                codes[mask] = self.rng.choice(n_categories, size=count, p=probs)
        if z is not None and latent_skew > 0.0:
            # Shift codes toward higher categories for high-latent records.
            shift = np.clip(
                np.round(latent_skew * z[:, factor]).astype(np.intp),
                -(n_categories - 1),
                n_categories - 1,
            )
            codes = np.clip(codes + shift, 0, n_categories - 1)
        return codes

    @staticmethod
    def one_hot(codes: np.ndarray, n_categories: int) -> np.ndarray:
        """Indicator block, shape (len(codes), n_categories)."""
        codes = np.asarray(codes, dtype=np.intp)
        if codes.size and (codes.min() < 0 or codes.max() >= n_categories):
            raise ValidationError("category codes out of range")
        block = np.zeros((codes.size, n_categories))
        block[np.arange(codes.size), codes] = 1.0
        return block

    # -- outcomes ---------------------------------------------------------

    def outcome_by_group_rate(
        self,
        qualification: np.ndarray,
        s: np.ndarray,
        rate_protected: float,
        rate_unprotected: float,
        *,
        label_noise: float = 0.1,
    ) -> np.ndarray:
        """Binary outcomes hitting per-group base rates.

        Within each group, the top fraction by qualification score
        receives a positive label; ``label_noise`` flips a random
        fraction to keep the task non-degenerate.  The pre-noise
        threshold is corrected so that the *post-noise* positive rate
        matches the requested base rate in expectation:
        ``rate = q (1 - noise) + (1 - q) noise  =>  q = (rate - noise)
        / (1 - 2 noise)`` (clipped into (0, 1) when the noise level
        makes an extreme rate unreachable).
        """
        for rate in (rate_protected, rate_unprotected):
            if not 0.0 < rate < 1.0:
                raise ValidationError("base rates must lie in (0, 1)")
        if not 0.0 <= label_noise < 0.5:
            raise ValidationError("label_noise must lie in [0, 0.5)")
        n = qualification.shape[0]
        y = np.zeros(n)
        for group, rate in ((1.0, rate_protected), (0.0, rate_unprotected)):
            mask = s == group
            if not np.any(mask):
                continue
            pre_noise = (rate - label_noise) / (1.0 - 2.0 * label_noise)
            pre_noise = float(np.clip(pre_noise, 1e-3, 1.0 - 1e-3))
            q = qualification[mask]
            threshold = np.quantile(q, 1.0 - pre_noise)
            y[mask] = (q > threshold).astype(np.float64)
        if label_noise > 0.0:
            flips = self.rng.random(n) < label_noise
            y[flips] = 1.0 - y[flips]
        return y
