"""Train / validation / test splitting.

Section V-B: "We randomly split the datasets into three parts ... the
same data split [is used] to compare all methods."  The default split
is therefore three equal parts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import RandomStateLike, check_random_state


@dataclass(frozen=True)
class Split:
    """Row indices of the three partitions."""

    train: np.ndarray
    val: np.ndarray
    test: np.ndarray

    @property
    def sizes(self) -> Tuple[int, int, int]:
        return self.train.size, self.val.size, self.test.size


def train_val_test_split(
    n_records: int,
    fractions: Tuple[float, float, float] = (1 / 3, 1 / 3, 1 / 3),
    *,
    random_state: RandomStateLike = 0,
) -> Split:
    """Random three-way split of ``range(n_records)``.

    ``fractions`` must be positive and sum to 1 (within tolerance); the
    test partition absorbs rounding so all rows are used exactly once.
    """
    if n_records < 3:
        raise ValidationError("need at least 3 records to split three ways")
    frac = np.asarray(fractions, dtype=np.float64)
    if frac.size != 3 or np.any(frac <= 0):
        raise ValidationError("fractions must be three positive numbers")
    if abs(frac.sum() - 1.0) > 1e-9:
        raise ValidationError("fractions must sum to 1")
    rng = check_random_state(random_state)
    perm = rng.permutation(n_records)
    n_train = max(1, int(round(n_records * frac[0])))
    n_val = max(1, int(round(n_records * frac[1])))
    n_train = min(n_train, n_records - 2)
    n_val = min(n_val, n_records - n_train - 1)
    return Split(
        train=np.sort(perm[:n_train]),
        val=np.sort(perm[n_train : n_train + n_val]),
        test=np.sort(perm[n_train + n_val :]),
    )


def stratified_split(
    labels,
    fractions: Tuple[float, float, float] = (1 / 3, 1 / 3, 1 / 3),
    *,
    random_state: RandomStateLike = 0,
) -> Split:
    """Three-way split preserving label proportions in each part.

    Useful for small or imbalanced classification datasets where a
    uniform split risks a single-class partition.
    """
    labels = np.asarray(labels).ravel()
    if labels.size < 3:
        raise ValidationError("need at least 3 records to split three ways")
    rng = check_random_state(random_state)
    train_parts, val_parts, test_parts = [], [], []
    for value in np.unique(labels):
        idx = np.flatnonzero(labels == value)
        if idx.size < 3:
            raise ValidationError(
                f"label {value!r} has fewer than 3 records; cannot stratify"
            )
        sub = train_val_test_split(
            idx.size, fractions, random_state=rng
        )
        train_parts.append(idx[sub.train])
        val_parts.append(idx[sub.val])
        test_parts.append(idx[sub.test])
    return Split(
        train=np.sort(np.concatenate(train_parts)),
        val=np.sort(np.concatenate(val_parts)),
        test=np.sort(np.concatenate(test_parts)),
    )
