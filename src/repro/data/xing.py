"""Synthetic stand-in for the Xing job-portal dataset (Zehlike et al.).

Table II: 2 240 profiles, 59 encoded attributes, protected attribute =
gender, ranking variable = weighted sum of work experience, education
experience and profile views; 57 job-search queries of up to 40
candidates each.

Because the deserved score is an exact linear function of observed
features, a linear regression on the full data recovers the ground
truth perfectly — reproducing the paper's MAP = KT = 1.0 for Full Data
on Xing.  The protected group receives modest negative shifts on the
score-carrying attributes, reproducing the ~31-33% protected share in
ground-truth top-10s.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.data.generator import LatentFactorSampler
from repro.data.schema import Attribute, DatasetSchema, TabularDataset
from repro.exceptions import ValidationError
from repro.utils.rng import RandomStateLike

DEFAULT_WEIGHTS: Tuple[float, float, float] = (1.0, 1.0, 1.0)
N_JOB_CATEGORIES = 54
WORK_COLUMN = "work_experience"
EDU_COLUMN = "education_experience"
VIEWS_COLUMN = "profile_views"


def xing_schema(n_job_categories: int = N_JOB_CATEGORIES) -> DatasetSchema:
    """Raw attribute layout for :func:`generate_xing` (59 encoded)."""
    return DatasetSchema(
        name="xing",
        attributes=(
            Attribute(WORK_COLUMN, "numeric"),
            Attribute(EDU_COLUMN, "numeric"),
            Attribute(VIEWS_COLUMN, "numeric"),
            Attribute("job_category", "categorical", n_job_categories),
            Attribute("gender_protected", "categorical", 2, protected=True),
        ),
    )


def compute_scores(
    dataset: TabularDataset, weights: Sequence[float] = DEFAULT_WEIGHTS
) -> np.ndarray:
    """Deserved score = weighted sum of the three qualification columns.

    The columns are standardised before weighting so no attribute
    dominates through units alone; this mirrors the paper's Table IV
    weight-sensitivity protocol.
    """
    weights = np.asarray(weights, dtype=np.float64).ravel()
    if weights.size != 3:
        raise ValidationError("weights must have exactly 3 entries (work, edu, views)")
    names = dataset.feature_names
    cols = [names.index(WORK_COLUMN), names.index(EDU_COLUMN), names.index(VIEWS_COLUMN)]
    block = dataset.X[:, cols]
    std = block.std(axis=0)
    std[std == 0.0] = 1.0
    return (block / std) @ weights


def generate_xing(
    n_queries: int = 57,
    candidates_per_query: int = 40,
    *,
    weights: Sequence[float] = DEFAULT_WEIGHTS,
    n_job_categories: int = N_JOB_CATEGORIES,
    random_state: RandomStateLike = 0,
) -> TabularDataset:
    """Generate the synthetic Xing dataset.

    Parameters
    ----------
    n_queries:
        Number of job-search queries (paper: 57).
    candidates_per_query:
        Candidates per query (paper: top 40).
    weights:
        (work, education, views) weights of the deserved score.
    n_job_categories:
        Level count of the job-category attribute; queries map onto
        categories round-robin.
    random_state:
        Seed.
    """
    if n_queries < 1 or candidates_per_query < 2:
        raise ValidationError("need n_queries >= 1 and candidates_per_query >= 2")
    n_records = n_queries * candidates_per_query
    schema = xing_schema(n_job_categories)
    sampler = LatentFactorSampler(random_state)
    z = sampler.latent(n_records, n_factors=2)  # factor 0: seniority
    # Negative correlation: the protected group (female) sits lower on
    # the seniority latent, reproducing the ~31% protected top-10 share.
    s = sampler.protected_groups(z, prevalence=0.45, correlation=-0.45)

    work = sampler.numeric_attribute(
        z, s, loading=120.0, group_shift=-60.0, noise=70.0, offset=200.0, clip_min=0.0
    )
    edu = sampler.numeric_attribute(
        z, s, loading=18.0, group_shift=-8.0, noise=18.0, factor=1, offset=50.0, clip_min=0.0
    )
    views = sampler.numeric_attribute(
        z, s, loading=150.0, group_shift=-80.0, noise=100.0, offset=300.0, clip_min=0.0
    )
    query_ids = np.repeat(np.arange(n_queries), candidates_per_query)
    job_category = (query_ids % n_job_categories).astype(np.intp)

    X = np.hstack(
        [
            np.column_stack([work, edu, views]),
            sampler.one_hot(job_category, n_job_categories),
            sampler.one_hot(s.astype(np.intp), 2),
        ]
    )

    dataset = TabularDataset(
        name="xing",
        X=X,
        y=np.zeros(n_records),
        protected=s,
        protected_indices=np.asarray(schema.protected_encoded_indices),
        feature_names=schema.encoded_feature_names,
        task="ranking",
        query_ids=query_ids,
    )
    dataset.y = compute_scores(dataset, weights)
    return dataset
