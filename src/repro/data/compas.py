"""Synthetic stand-in for the ProPublica COMPAS recidivism dataset.

Table II: 6 901 records, 431 encoded attributes, protected attribute =
race (binary: protected group vs. complement), outcome = two-year
recidivism, base rates 0.52 (protected) / 0.40 (unprotected).

The dominant share of the 431 encoded columns in the real data comes
from the high-cardinality charge-description attribute; the synthetic
schema mirrors that: a ``charge_desc`` categorical with hundreds of
levels plus demographic and criminal-history attributes.  Race proxies
(e.g. a coarse geography code) are injected so that masking race does
not remove group information.
"""

from __future__ import annotations

import numpy as np

from repro.data.generator import LatentFactorSampler
from repro.data.schema import Attribute, DatasetSchema, TabularDataset
from repro.exceptions import ValidationError
from repro.utils.rng import RandomStateLike


def compas_schema(charge_levels: int = 397) -> DatasetSchema:
    """The raw attribute layout used by :func:`generate_compas`."""
    return DatasetSchema(
        name="compas",
        attributes=(
            Attribute("age", "numeric"),
            Attribute("priors_count", "numeric"),
            Attribute("juv_fel_count", "numeric"),
            Attribute("juv_misd_count", "numeric"),
            Attribute("days_in_custody", "numeric"),
            Attribute("sex", "categorical", 2),
            Attribute("age_cat", "categorical", 3),
            Attribute("charge_degree", "categorical", 2),
            Attribute("geo_code", "categorical", 20),
            Attribute("charge_desc", "categorical", charge_levels),
            Attribute("race_protected", "categorical", 2, protected=True),
        ),
    )


def generate_compas(
    n_records: int = 6901,
    *,
    charge_levels: int = 397,
    random_state: RandomStateLike = 0,
) -> TabularDataset:
    """Generate the synthetic COMPAS dataset.

    Parameters
    ----------
    n_records:
        Number of defendants (paper: 6 901).
    charge_levels:
        Cardinality of the charge-description attribute; the default
        brings the encoded width to Table II's 431 columns.  Tests use
        a small value for speed.
    random_state:
        Seed.
    """
    if n_records < 20:
        raise ValidationError("n_records must be at least 20")
    schema = compas_schema(charge_levels)
    sampler = LatentFactorSampler(random_state)
    # Latent factor 0: criminal-history intensity (drives recidivism).
    z = sampler.latent(n_records, n_factors=2)
    # Race correlates with the geography/latent structure (proxy source).
    s = sampler.protected_groups(z, prevalence=0.51, correlation=0.45)

    age = sampler.numeric_attribute(
        z, s, loading=-3.0, group_shift=-2.0, noise=8.0, offset=34.0, clip_min=18.0
    )
    priors = sampler.numeric_attribute(
        z, s, loading=2.5, group_shift=0.8, noise=1.5, offset=3.0, clip_min=0.0
    )
    juv_fel = sampler.numeric_attribute(
        z, s, loading=0.6, group_shift=0.2, noise=0.4, offset=0.2, clip_min=0.0
    )
    juv_misd = sampler.numeric_attribute(
        z, s, loading=0.5, group_shift=0.2, noise=0.4, offset=0.3, clip_min=0.0
    )
    custody = sampler.numeric_attribute(
        z, s, loading=15.0, group_shift=6.0, noise=30.0, factor=1, offset=40.0, clip_min=0.0
    )
    sex = sampler.categorical_attribute(s, 2, group_skew=0.15)
    age_cat = np.digitize(age, [25.0, 45.0]).astype(np.intp)
    charge_degree = sampler.categorical_attribute(s, 2, group_skew=0.1, z=z, latent_skew=0.3)
    # geo_code is the deliberate strong race proxy.
    geo = sampler.categorical_attribute(s, 20, group_skew=0.8)
    charge = sampler.categorical_attribute(
        s, charge_levels, group_skew=0.25, z=z, latent_skew=2.0
    )

    blocks = [
        age[:, None],
        priors[:, None],
        juv_fel[:, None],
        juv_misd[:, None],
        custody[:, None],
        sampler.one_hot(sex, 2),
        sampler.one_hot(age_cat, 3),
        sampler.one_hot(charge_degree, 2),
        sampler.one_hot(geo, 20),
        sampler.one_hot(charge, charge_levels),
        sampler.one_hot(s.astype(np.intp), 2),
    ]
    X = np.hstack(blocks)

    qualification = 1.2 * z[:, 0] + 0.3 * z[:, 1] + 0.05 * priors
    y = sampler.outcome_by_group_rate(
        qualification, s, rate_protected=0.52, rate_unprotected=0.40
    )

    return TabularDataset(
        name="compas",
        X=X,
        y=y,
        protected=s,
        protected_indices=np.asarray(schema.protected_encoded_indices),
        feature_names=schema.encoded_feature_names,
        task="classification",
    )
