"""Dataset substrate.

The paper evaluates on five public datasets; this offline reproduction
replaces each with a schema-faithful synthetic generator that matches
the documented statistics of Table II (sizes, one-hot dimensionality,
base rates, protected attribute) and injects protected-correlated proxy
attributes so the paper's central phenomenon — masking alone leaves
leakage — is preserved.  See DESIGN.md section 3.
"""

from repro.data.schema import Attribute, DatasetSchema, TabularDataset
from repro.data.generator import LatentFactorSampler
from repro.data.synthetic import SyntheticVariant, generate_synthetic
from repro.data.compas import generate_compas
from repro.data.census import generate_census
from repro.data.credit import generate_credit
from repro.data.airbnb import generate_airbnb
from repro.data.xing import generate_xing
from repro.data.splits import train_val_test_split

DATASET_GENERATORS = {
    "compas": generate_compas,
    "census": generate_census,
    "credit": generate_credit,
    "airbnb": generate_airbnb,
    "xing": generate_xing,
}

__all__ = [
    "Attribute",
    "DatasetSchema",
    "TabularDataset",
    "LatentFactorSampler",
    "SyntheticVariant",
    "generate_synthetic",
    "generate_compas",
    "generate_census",
    "generate_credit",
    "generate_airbnb",
    "generate_xing",
    "train_val_test_split",
    "DATASET_GENERATORS",
]
