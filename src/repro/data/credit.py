"""Synthetic stand-in for the UCI German Credit dataset.

Table II: 1 000 records, 67 encoded attributes, protected attribute =
age (binary: young vs. old, following the fairness literature's
age <= 25 split), outcome = credit worthiness, base rates 0.67
(protected = young) / 0.72 (unprotected).
"""

from __future__ import annotations

import numpy as np

from repro.data.generator import LatentFactorSampler
from repro.data.schema import Attribute, DatasetSchema, TabularDataset
from repro.exceptions import ValidationError
from repro.utils.rng import RandomStateLike


def credit_schema() -> DatasetSchema:
    """Raw attribute layout for :func:`generate_credit` (67 encoded)."""
    return DatasetSchema(
        name="credit",
        attributes=(
            Attribute("duration_months", "numeric"),
            Attribute("credit_amount", "numeric"),
            Attribute("installment_rate", "numeric"),
            Attribute("residence_since", "numeric"),
            Attribute("existing_credits", "numeric"),
            Attribute("checking_status", "categorical", 4),
            Attribute("credit_history", "categorical", 5),
            Attribute("purpose", "categorical", 10),
            Attribute("savings_status", "categorical", 5),
            Attribute("employment_since", "categorical", 5),
            Attribute("personal_status", "categorical", 4),
            Attribute("other_parties", "categorical", 3),
            Attribute("property_magnitude", "categorical", 4),
            Attribute("other_payment_plans", "categorical", 3),
            Attribute("housing", "categorical", 3),
            Attribute("job", "categorical", 4),
            Attribute("own_telephone", "categorical", 2),
            Attribute("foreign_worker", "categorical", 2),
            Attribute("num_dependents", "categorical", 2),
            Attribute("age_protected", "categorical", 2, protected=True),
        ),
    )


def generate_credit(
    n_records: int = 1000,
    *,
    random_state: RandomStateLike = 0,
) -> TabularDataset:
    """Generate the synthetic German Credit dataset."""
    if n_records < 20:
        raise ValidationError("n_records must be at least 20")
    schema = credit_schema()
    sampler = LatentFactorSampler(random_state)
    z = sampler.latent(n_records, n_factors=2)  # factor 0: solvency
    # Protected = young applicants; correlates with employment history.
    s = sampler.protected_groups(z, prevalence=0.25, correlation=-0.35)

    duration = sampler.numeric_attribute(
        z, s, loading=-4.0, group_shift=3.0, noise=8.0, offset=21.0, clip_min=4.0
    )
    amount = sampler.numeric_attribute(
        z, s, loading=-700.0, group_shift=300.0, noise=2000.0, offset=3200.0, clip_min=250.0
    )
    installment = sampler.numeric_attribute(
        z, s, loading=-0.4, group_shift=0.3, noise=1.0, offset=3.0, clip_min=1.0
    )
    residence = sampler.numeric_attribute(
        z, s, loading=0.3, group_shift=-0.8, noise=1.0, factor=1, offset=2.8, clip_min=1.0
    )
    credits = sampler.numeric_attribute(
        z, s, loading=0.2, group_shift=-0.2, noise=0.5, offset=1.4, clip_min=1.0
    )

    categorical_specs = [
        ("checking_status", 4, 0.2, 1.0),
        ("credit_history", 5, 0.3, 1.2),
        ("purpose", 10, 0.3, 0.0),
        ("savings_status", 5, 0.2, 1.0),
        ("employment_since", 5, 0.7, 0.8),  # strong age proxy
        ("personal_status", 4, 0.5, 0.0),
        ("other_parties", 3, 0.1, 0.0),
        ("property_magnitude", 4, 0.4, 0.5),
        ("other_payment_plans", 3, 0.1, 0.0),
        ("housing", 3, 0.6, 0.0),  # age proxy
        ("job", 4, 0.2, 0.8),
        ("own_telephone", 2, 0.3, 0.0),
        ("foreign_worker", 2, 0.1, 0.0),
        ("num_dependents", 2, 0.4, 0.0),
    ]
    blocks = [
        duration[:, None],
        amount[:, None],
        installment[:, None],
        residence[:, None],
        credits[:, None],
    ]
    for _, n_cats, skew, latent_skew in categorical_specs:
        codes = sampler.categorical_attribute(
            s, n_cats, group_skew=skew, z=z, latent_skew=latent_skew
        )
        blocks.append(sampler.one_hot(codes, n_cats))
    blocks.append(sampler.one_hot(s.astype(np.intp), 2))
    X = np.hstack(blocks)

    qualification = 1.4 * z[:, 0] + 0.4 * z[:, 1] - 0.0001 * amount
    y = sampler.outcome_by_group_rate(
        qualification, s, rate_protected=0.67, rate_unprotected=0.72
    )

    return TabularDataset(
        name="credit",
        X=X,
        y=y,
        protected=s,
        protected_indices=np.asarray(schema.protected_encoded_indices),
        feature_names=schema.encoded_feature_names,
        task="classification",
    )
