"""Synthetic stand-in for the UCI Census Income (Adult) dataset.

Table II: 48 842 records, 101 encoded attributes, protected attribute =
gender, outcome = income > 50K, base rates 0.12 (protected = female) /
0.31 (unprotected).

Schema mirrors Adult: age, hours, capital gains/losses plus workclass,
education, marital status, occupation, relationship, race and native
country categoricals.  Occupation and relationship are strongly
gender-skewed to act as proxies.
"""

from __future__ import annotations

import numpy as np

from repro.data.generator import LatentFactorSampler
from repro.data.schema import Attribute, DatasetSchema, TabularDataset
from repro.exceptions import ValidationError
from repro.utils.rng import RandomStateLike


def census_schema(country_levels: int = 38) -> DatasetSchema:
    """Raw attribute layout for :func:`generate_census`."""
    return DatasetSchema(
        name="census",
        attributes=(
            Attribute("age", "numeric"),
            Attribute("education_num", "numeric"),
            Attribute("capital_gain", "numeric"),
            Attribute("capital_loss", "numeric"),
            Attribute("hours_per_week", "numeric"),
            Attribute("workclass", "categorical", 8),
            Attribute("education", "categorical", 16),
            Attribute("marital_status", "categorical", 7),
            Attribute("occupation", "categorical", 14),
            Attribute("relationship", "categorical", 6),
            Attribute("race", "categorical", 5),
            Attribute("native_country", "categorical", country_levels),
            Attribute("gender_protected", "categorical", 2, protected=True),
        ),
    )


def generate_census(
    n_records: int = 48842,
    *,
    country_levels: int = 38,
    random_state: RandomStateLike = 0,
) -> TabularDataset:
    """Generate the synthetic Census Income dataset."""
    if n_records < 20:
        raise ValidationError("n_records must be at least 20")
    schema = census_schema(country_levels)
    sampler = LatentFactorSampler(random_state)
    z = sampler.latent(n_records, n_factors=2)  # factor 0: earning power
    # Negative correlation: the protected group (female) sits lower on
    # the earning-power latent, creating proxy structure.
    s = sampler.protected_groups(z, prevalence=0.33, correlation=-0.35)

    age = sampler.numeric_attribute(
        z, s, loading=8.0, group_shift=-1.5, noise=7.0, offset=38.0, clip_min=17.0
    )
    edu_num = sampler.numeric_attribute(
        z, s, loading=2.4, group_shift=-0.4, noise=1.0, offset=10.0, clip_min=1.0
    )
    cap_gain = sampler.numeric_attribute(
        z, s, loading=1800.0, group_shift=-400.0, noise=1100.0, offset=800.0, clip_min=0.0
    )
    cap_loss = sampler.numeric_attribute(
        z, s, loading=40.0, group_shift=-10.0, noise=120.0, factor=1, offset=60.0, clip_min=0.0
    )
    hours = sampler.numeric_attribute(
        z, s, loading=7.0, group_shift=-5.0, noise=5.0, offset=40.0, clip_min=1.0
    )
    workclass = sampler.categorical_attribute(s, 8, group_skew=0.2)
    education = sampler.categorical_attribute(s, 16, group_skew=0.1, z=z, latent_skew=1.5)
    marital = sampler.categorical_attribute(s, 7, group_skew=0.5)
    occupation = sampler.categorical_attribute(s, 14, group_skew=0.7, z=z, latent_skew=1.0)
    relationship = sampler.categorical_attribute(s, 6, group_skew=0.8)
    race = sampler.categorical_attribute(s, 5, group_skew=0.05)
    country = sampler.categorical_attribute(s, country_levels, group_skew=0.05)

    X = np.hstack(
        [
            age[:, None],
            edu_num[:, None],
            cap_gain[:, None],
            cap_loss[:, None],
            hours[:, None],
            sampler.one_hot(workclass, 8),
            sampler.one_hot(education, 16),
            sampler.one_hot(marital, 7),
            sampler.one_hot(occupation, 14),
            sampler.one_hot(relationship, 6),
            sampler.one_hot(race, 5),
            sampler.one_hot(country, country_levels),
            sampler.one_hot(s.astype(np.intp), 2),
        ]
    )

    qualification = 1.5 * z[:, 0] + 0.02 * hours + 0.1 * edu_num
    y = sampler.outcome_by_group_rate(
        qualification, s, rate_protected=0.12, rate_unprotected=0.31
    )

    return TabularDataset(
        name="census",
        X=X,
        y=y,
        protected=s,
        protected_indices=np.asarray(schema.protected_encoded_indices),
        feature_names=schema.encoded_feature_names,
        task="classification",
    )
