"""Command-line entry point: regenerate paper experiments.

Usage::

    python -m repro list
    python -m repro run table3
    python -m repro run fig4 --scale paper --seed 11
    python -m repro run all

``run`` prints the same table/series the corresponding paper artefact
reports; ``--scale paper`` switches from the reduced default protocol
to the paper's full grids and dataset sizes.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.exceptions import ReproError
from repro.pipeline.config import ExperimentConfig
from repro.pipeline.registry import EXPERIMENTS, run_experiment

_DESCRIPTIONS = {
    "table1": "motivating Xing example (group-fair yet individually unfair)",
    "table2": "dataset statistics",
    "fig2": "synthetic-property study (iFair vs LFR)",
    "fig3": "utility vs individual-fairness trade-off (classification)",
    "table3": "classification with three tuning criteria",
    "table4": "Xing score-weight sensitivity",
    "table5": "ranking task (Xing, Airbnb)",
    "fig4": "adversarial obfuscation accuracy",
    "fig5": "post-hoc parity via FA*IR on iFair scores",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the iFair paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (paper table/figure) or 'all'",
    )
    run.add_argument(
        "--scale",
        choices=("fast", "paper"),
        default="fast",
        help="reduced protocol (default) or the paper's full protocol",
    )
    run.add_argument(
        "--seed", type=int, default=7, help="master random seed (default 7)"
    )
    return parser


def _config(scale: str, seed: int) -> ExperimentConfig:
    if scale == "paper":
        return ExperimentConfig.paper(random_state=seed)
    return ExperimentConfig.fast(random_state=seed)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            print(f"{name:8s} {_DESCRIPTIONS.get(name, '')}")
        return 0
    config = _config(args.scale, args.seed)
    targets = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    try:
        for target in targets:
            print(run_experiment(target, config))
            print()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
