"""Command-line entry point: experiments and the serving workflow.

Usage::

    python -m repro list
    python -m repro run table3
    python -m repro run fig4 --scale paper --seed 11
    python -m repro run all --json
    python -m repro fit-save compas --out artifacts/compas
    python -m repro serve --artifact artifacts/compas --port 8351

``run`` prints the same table/series the corresponding paper artefact
reports (``--json`` switches to the machine-readable serialisation);
``--scale paper`` switches from the reduced default protocol to the
paper's full grids and dataset sizes.  ``fit-save`` fits a full
serving pipeline (scaler -> iFair -> scorer -> thresholds) on one of
the evaluation datasets and writes a versioned artifact directory;
``serve`` loads such an artifact and answers JSON requests over HTTP.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from typing import List, Optional

import repro
from repro.exceptions import ReproError
from repro.pipeline.config import ExperimentConfig
from repro.pipeline.registry import EXPERIMENTS, run_experiment, run_experiment_dict
from repro.telemetry.logs import configure_logging

_DESCRIPTIONS = {
    "table1": "motivating Xing example (group-fair yet individually unfair)",
    "table2": "dataset statistics",
    "fig2": "synthetic-property study (iFair vs LFR)",
    "fig3": "utility vs individual-fairness trade-off (classification)",
    "table3": "classification with three tuning criteria",
    "table4": "Xing score-weight sensitivity",
    "table5": "ranking task (Xing, Airbnb)",
    "fig4": "adversarial obfuscation accuracy",
    "fig5": "post-hoc parity via FA*IR on iFair scores",
}

_FIT_DATASETS = ("compas", "census", "credit")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the iFair paper's tables and figures.",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {repro.__version__}",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    lst = sub.add_parser("list", help="list available experiments")
    _add_logging_flags(lst)

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (paper table/figure) or 'all'",
    )
    run.add_argument(
        "--scale",
        choices=("fast", "paper"),
        default="fast",
        help="reduced protocol (default) or the paper's full protocol",
    )
    run.add_argument(
        "--seed", type=int, default=7, help="master random seed (default 7)"
    )
    run.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of rendered tables",
    )
    _add_pair_mode_flags(run)
    _add_tuning_flags(run)
    _add_logging_flags(run)

    fit = sub.add_parser(
        "fit-save",
        help="fit a serving pipeline on a dataset and save the artifact",
    )
    fit.add_argument("dataset", choices=_FIT_DATASETS, help="dataset to fit on")
    fit.add_argument("--out", required=True, help="artifact output directory")
    fit.add_argument(
        "--records", type=int, default=1000, help="training records (default 1000)"
    )
    fit.add_argument(
        "--n-prototypes", type=int, default=10, help="iFair K (default 10)"
    )
    fit.add_argument(
        "--lambda-util", type=float, default=1.0, help="utility weight (default 1)"
    )
    fit.add_argument(
        "--mu-fair", type=float, default=1.0, help="fairness weight (default 1)"
    )
    fit.add_argument(
        "--criterion",
        choices=("parity", "equal_opportunity"),
        default="parity",
        help="decision-threshold calibration criterion (default parity)",
    )
    fit.add_argument(
        "--max-iter", type=int, default=100, help="L-BFGS budget (default 100)"
    )
    fit.add_argument(
        "--seed", type=int, default=7, help="master random seed (default 7)"
    )
    fit.add_argument(
        "--fit-jobs",
        type=int,
        default=None,
        metavar="J",
        help="worker processes for the fit's restarts (-1 = per CPU)",
    )
    fit.add_argument(
        "--tune",
        action="store_true",
        help=(
            "grid-search the mixture coefficients on a validation split "
            "before the final fit (see --tune-criterion)"
        ),
    )
    fit.add_argument(
        "--tune-criterion",
        choices=("max_utility", "max_fairness", "optimal"),
        default="optimal",
        help="selection rule for --tune (default optimal)",
    )
    _add_pair_mode_flags(fit)
    _add_tuning_flags(fit)
    _add_logging_flags(fit)

    serve = sub.add_parser("serve", help="serve a saved artifact over HTTP")
    serve.add_argument("--artifact", required=True, help="artifact directory")
    serve.add_argument("--host", default="127.0.0.1", help="bind host")
    serve.add_argument("--port", type=int, default=8351, help="bind port")
    serve.add_argument(
        "--batch-size",
        type=int,
        default=256,
        help="max rows per model evaluation (default 256)",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=4096,
        help="per-record representation cache capacity (default 4096)",
    )
    serve.add_argument(
        "--batch-delay-ms",
        type=float,
        default=0.0,
        help=(
            "micro-batch window in milliseconds: how long the leader "
            "request waits to coalesce concurrent followers into one "
            "model pass (applied per engine worker; default 0 adds no "
            "latency, ~2 trades p50 for throughput under load)"
        ),
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "engine worker processes (default 1 = single in-process "
            "engine, simplest to debug); N>=2 forks N workers sharing "
            "the model read-only via shared memory and enables "
            "POST /v1/admin/reload blue/green model swaps"
        ),
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=0.0,
        help=(
            "per-attempt worker reply deadline in milliseconds "
            "(multi-worker tier only): a worker that misses it is "
            "killed and the request rerouted to a healthy peer; "
            "default 0 waits forever"
        ),
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=0,
        help=(
            "admission gate (multi-worker tier only): max requests in "
            "flight past the gate; excess load queues up to "
            "--shed-queue-ms then is shed with 429 + Retry-After; "
            "default 0 = unbounded"
        ),
    )
    serve.add_argument(
        "--shed-queue-ms",
        type=float,
        default=100.0,
        help=(
            "max milliseconds a request may wait at the admission gate "
            "before being shed (only meaningful with --max-inflight; "
            "default 100)"
        ),
    )
    serve.add_argument(
        "--online-refit",
        action="store_true",
        help=(
            "attach the drift-response controller (multi-worker tier "
            "only): served traffic is buffered in a sliding window, "
            "fairness drift / covariate shift triggers a warm "
            "partial_fit refit over the window and a blue/green "
            "hot-swap of the refreshed model"
        ),
    )
    serve.add_argument(
        "--refresh-window",
        type=int,
        default=512,
        help=(
            "sliding-window rows the online controller buffers for the "
            "shift statistic, landmark re-anchoring and refits "
            "(requires --online-refit; default 512)"
        ),
    )
    serve.add_argument(
        "--drift-policy",
        choices=("monitor", "shift", "either", "both"),
        default="either",
        help=(
            "which signal schedules an online refit: the fairness "
            "monitor's drift flags, the covariate shift statistic, "
            "either (default), or only when both agree "
            "(requires --online-refit)"
        ),
    )
    serve.add_argument(
        "--refit-cooldown",
        type=float,
        default=30.0,
        help=(
            "minimum seconds between automatic online refits "
            "(requires --online-refit; default 30)"
        ),
    )
    _add_logging_flags(serve)
    return parser


def _add_logging_flags(parser: argparse.ArgumentParser) -> None:
    """Structured-logging flags shared by every verb.

    The library itself never writes to stderr; these flags turn on the
    ``repro`` logging tree for the duration of the command.  With
    ``--log-level INFO`` the ``serve`` verb emits one access-log record
    per handled request; ``--log-json`` switches every record to
    one-line JSON for log shippers.
    """
    parser.add_argument(
        "--log-level",
        choices=("DEBUG", "INFO", "WARNING", "ERROR"),
        default="WARNING",
        help="stderr log threshold for repro's loggers (default WARNING)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit log records as one-line JSON instead of text",
    )


def _add_pair_mode_flags(parser: argparse.ArgumentParser) -> None:
    """Fairness-oracle flags shared by ``run`` and ``fit-save``."""
    parser.add_argument(
        "--pair-mode",
        choices=("auto", "full", "sampled", "landmark"),
        default="auto",
        help=(
            "fairness-oracle mode for iFair fits: landmark enables the "
            "O(M*L*N) large-M oracle (default auto)"
        ),
    )
    parser.add_argument(
        "--landmarks",
        type=int,
        default=None,
        metavar="L",
        help="anchor count for --pair-mode landmark (default min(M, 128))",
    )
    parser.add_argument(
        "--landmark-method",
        choices=("kmeans++", "farthest"),
        default="kmeans++",
        help="landmark seeding strategy (default kmeans++)",
    )
    parser.add_argument(
        "--oracle-jobs",
        type=int,
        default=None,
        metavar="J",
        help=(
            "worker processes per landmark-oracle call — row shards "
            "evaluated in parallel, bitwise-identical results for any "
            "value (default in-process, -1 = one per CPU)"
        ),
    )
    parser.add_argument(
        "--oracle-shards",
        type=int,
        default=None,
        metavar="S",
        help=(
            "row-shard count per oracle call (default: the resolved "
            "--oracle-jobs); fix it to pin results across worker counts"
        ),
    )
    parser.add_argument(
        "--batch-mode",
        choices=("full", "stochastic"),
        default="full",
        help=(
            "landmark-oracle batching: full (exact, default) or "
            "stochastic mini-batches with deterministic batch streams"
        ),
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="B",
        help=(
            "rows per stochastic oracle call (requires "
            "--batch-mode stochastic; B = M reduces to the full path)"
        ),
    )


def _add_tuning_flags(parser: argparse.ArgumentParser) -> None:
    """Parallel-tuning flags shared by ``run`` and ``fit-save``.

    ``--tune-jobs 4`` runs candidate fits on four worker processes
    (training arrays broadcast once via shared memory); results are
    identical to the serial run for any value.  ``--tune-strategy
    halving`` switches the search to successive halving — typically
    2-4x fewer fit-iterations over the paper grid.
    """
    parser.add_argument(
        "--tune-jobs",
        type=int,
        default=None,
        metavar="J",
        help=(
            "worker processes for hyper-parameter search "
            "(default serial, -1 = one per CPU)"
        ),
    )
    parser.add_argument(
        "--tune-strategy",
        choices=("exhaustive", "halving"),
        default="exhaustive",
        help="grid-search strategy (default exhaustive)",
    )
    parser.add_argument(
        "--tune-promote",
        choices=("rank", "extrapolate"),
        default="rank",
        help=(
            "halving rung promotion: observed-score rank or "
            "learning-curve extrapolation (default rank)"
        ),
    )
    parser.add_argument(
        "--pool",
        choices=("per-call", "session"),
        default="per-call",
        help=(
            "worker-pool lifetime: per-call spawns and tears down a "
            "pool per parallel section, session reuses one process-"
            "wide warm pool plus the shared-memory arena cache "
            "(default per-call)"
        ),
    )


def _check_pair_mode_args(args) -> None:
    """Landmark knobs require the landmark oracle — fail loudly rather
    than silently running a different pair mode than the user asked
    for (both ``run`` and ``fit-save`` share this contract)."""
    if args.pair_mode != "landmark":
        if args.landmarks is not None:
            raise ReproError("--landmarks requires --pair-mode landmark")
        if args.landmark_method != "kmeans++":
            raise ReproError("--landmark-method requires --pair-mode landmark")
        if args.oracle_jobs is not None:
            raise ReproError("--oracle-jobs requires --pair-mode landmark")
        if args.oracle_shards is not None:
            raise ReproError("--oracle-shards requires --pair-mode landmark")
        if args.batch_mode != "full":
            raise ReproError("--batch-mode requires --pair-mode landmark")
        if args.batch_size is not None:
            raise ReproError("--batch-size requires --pair-mode landmark")
    if args.batch_size is not None and args.batch_mode != "stochastic":
        raise ReproError("--batch-size requires --batch-mode stochastic")
    if args.batch_mode == "stochastic" and args.batch_size is None:
        raise ReproError("--batch-mode stochastic requires --batch-size")


def _config(args) -> ExperimentConfig:
    _check_pair_mode_args(args)
    if args.scale == "paper":
        config = ExperimentConfig.paper(random_state=args.seed)
    else:
        config = ExperimentConfig.fast(random_state=args.seed)
    if args.pair_mode != "auto":
        config = replace(
            config,
            pair_mode=args.pair_mode,
            n_landmarks=args.landmarks,
            landmark_method=args.landmark_method,
            oracle_jobs=args.oracle_jobs,
            oracle_shards=args.oracle_shards,
            batch_mode=args.batch_mode,
            batch_size=args.batch_size,
        )
    if (
        args.tune_jobs is not None
        or args.tune_strategy != "exhaustive"
        or args.tune_promote != "rank"
        or args.pool != "per-call"
    ):
        config = replace(
            config,
            tune_jobs=args.tune_jobs,
            tune_strategy=args.tune_strategy,
            tune_promote=args.tune_promote,
            tune_pool=args.pool,
        )
    return config


def _cmd_run(args) -> int:
    config = _config(args)
    targets = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if args.json:
        results = {target: run_experiment_dict(target, config) for target in targets}
        payload = results[targets[0]] if len(targets) == 1 else results
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    for target in targets:
        print(run_experiment(target, config))
        print()
    return 0


def _cmd_fit_save(args) -> int:
    from repro.data import generate_census, generate_compas, generate_credit
    from repro.serving import fit_serving_pipeline, save_artifact

    _check_pair_mode_args(args)

    if args.dataset == "compas":
        dataset = generate_compas(args.records, random_state=args.seed)
    elif args.dataset == "census":
        dataset = generate_census(args.records, random_state=args.seed)
    else:
        dataset = generate_credit(args.records, random_state=args.seed)
    artifact = fit_serving_pipeline(
        dataset,
        n_prototypes=args.n_prototypes,
        lambda_util=args.lambda_util,
        mu_fair=args.mu_fair,
        criterion=args.criterion,
        max_iter=args.max_iter,
        pair_mode=args.pair_mode,
        n_landmarks=args.landmarks,
        landmark_method=args.landmark_method,
        oracle_jobs=args.oracle_jobs,
        oracle_shards=args.oracle_shards,
        batch_mode=args.batch_mode,
        batch_size=args.batch_size,
        n_jobs=args.fit_jobs,
        pool=args.pool,
        tune=args.tune,
        tune_criterion=args.tune_criterion,
        tune_jobs=args.tune_jobs,
        tune_strategy=args.tune_strategy,
        tune_promote=args.tune_promote,
        random_state=args.seed,
    )
    path = save_artifact(args.out, artifact)
    tuned = artifact.metadata.get("tuned")
    suffix = (
        f", tuned lambda={tuned['lambda_util']} mu={tuned['mu_fair']}"
        if tuned
        else ""
    )
    print(
        f"saved {args.dataset} serving artifact to {path} "
        f"(K={args.n_prototypes}, loss={artifact.model.loss_:.4f}, "
        f"criterion={args.criterion}{suffix})"
    )
    return 0


def _check_online_args(args) -> None:
    """Online knobs require the controller — fail loudly rather than
    silently serving without the drift response the user tuned."""
    if args.online_refit:
        return
    if args.refresh_window != 512:
        raise ReproError("--refresh-window requires --online-refit")
    if args.drift_policy != "either":
        raise ReproError("--drift-policy requires --online-refit")
    if args.refit_cooldown != 30.0:
        raise ReproError("--refit-cooldown requires --online-refit")


def _cmd_serve(args) -> int:
    from repro.serving import serve_artifact

    _check_online_args(args)
    # serve_artifact loads first, so artifact problems report as
    # artifact errors and only a failing socket bind as a bind error
    # (worker processes are also torn down on a failed bind).
    try:
        service = serve_artifact(
            args.artifact,
            host=args.host,
            port=args.port,
            batch_size=args.batch_size,
            cache_size=args.cache_size,
            max_batch_delay=args.batch_delay_ms / 1000.0,
            workers=args.workers,
            deadline_s=(args.deadline_ms / 1000.0) if args.deadline_ms > 0 else None,
            max_inflight=args.max_inflight if args.max_inflight > 0 else None,
            shed_queue_s=args.shed_queue_ms / 1000.0,
            online_refit=args.online_refit,
            refresh_window=args.refresh_window,
            drift_policy=args.drift_policy,
            refit_cooldown_s=args.refit_cooldown,
            verbose=True,
        )
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port} ({exc})", file=sys.stderr)
        return 1
    host, port = service.address
    endpoints = ", ".join(service.engine.endpoints())
    tier = f"{args.workers} workers" if args.workers > 1 else "in-process"
    if args.online_refit:
        tier += f", online refit ({args.drift_policy})"
    print(
        f"serving {args.artifact} on http://{host}:{port} "
        f"({endpoints}; {tier})"
    )
    try:
        service.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("shutting down")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    configure_logging(level=args.log_level, json_format=args.log_json)
    try:
        if args.command == "list":
            for name in sorted(EXPERIMENTS):
                print(f"{name:8s} {_DESCRIPTIONS.get(name, '')}")
            return 0
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "fit-save":
            return _cmd_fit_save(args)
        if args.command == "serve":
            return _cmd_serve(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
