"""repro — a full reproduction of *iFair: Learning Individually Fair
Data Representations for Algorithmic Decision Making* (Lahoti, Gummadi,
Weikum — ICDE 2019).

Public API highlights
---------------------
* :class:`repro.IFair` — the individually fair representation learner.
* :class:`repro.LFR`, :class:`repro.SVDTransform`,
  :class:`repro.FairRanker` — the paper's baselines, reimplemented.
* :mod:`repro.metrics` — utility / individual-fairness /
  group-fairness / obfuscation measures.
* :mod:`repro.data` — schema-faithful synthetic generators for the five
  evaluation datasets plus the Section IV synthetic study.
* :mod:`repro.pipeline` — one runner per paper table and figure
  (``repro.pipeline.run_experiment("table3")``).
"""

from repro.baselines import (
    AdversarialCensoring,
    FairRanker,
    FullData,
    LFR,
    MaskedData,
    SVDTransform,
)
from repro.core import IFair, IFairObjective, WeightedMinkowski
from repro.exceptions import (
    NotFittedError,
    ReproError,
    SchemaError,
    ValidationError,
)
from repro.posthoc import GroupThresholdAdjuster

__version__ = "1.0.0"

__all__ = [
    "IFair",
    "IFairObjective",
    "WeightedMinkowski",
    "LFR",
    "FairRanker",
    "FullData",
    "MaskedData",
    "SVDTransform",
    "AdversarialCensoring",
    "GroupThresholdAdjuster",
    "ReproError",
    "ValidationError",
    "NotFittedError",
    "SchemaError",
    "__version__",
]
