"""Group-fairness metrics: statistical parity, equality of opportunity,
and the protected share of top-k ranks.

The paper reports parity and EqOpp on a "1 is perfectly fair" scale:

    Parity = 1 - | mean(yhat | protected) - mean(yhat | unprotected) |
    EqOpp  = 1 - | TPR_protected - TPR_unprotected |
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_binary_labels, check_vector


def _split_groups(values: np.ndarray, protected: np.ndarray):
    prot = values[protected == 1]
    nonprot = values[protected == 0]
    if prot.size == 0 or nonprot.size == 0:
        raise ValidationError("both protected and unprotected groups must be non-empty")
    return prot, nonprot


def statistical_parity(y_hat, protected) -> float:
    """1 minus the absolute acceptance-rate gap between groups."""
    y_hat = check_vector(y_hat, "y_hat")
    protected = check_binary_labels(protected, "protected", length=y_hat.size)
    prot, nonprot = _split_groups(y_hat, protected)
    return float(1.0 - abs(prot.mean() - nonprot.mean()))


def equal_opportunity(y_true, y_hat, protected) -> float:
    """1 minus the absolute true-positive-rate gap between groups.

    Groups with no positive ground-truth samples make the TPR undefined;
    this raises rather than silently reporting fairness.
    """
    y_true = check_binary_labels(y_true, "y_true")
    y_hat = check_binary_labels(y_hat, "y_hat", length=y_true.size)
    protected = check_binary_labels(protected, "protected", length=y_true.size)
    rates = []
    for group in (1.0, 0.0):
        mask = (protected == group) & (y_true == 1)
        if not np.any(mask):
            raise ValidationError(
                "equal_opportunity undefined: a group has no positive samples"
            )
        rates.append(float(y_hat[mask].mean()))
    return float(1.0 - abs(rates[0] - rates[1]))


def protected_share_at_k(ranking: Sequence[int], protected, k: int = 10) -> float:
    """Fraction of protected candidates within the top-``k`` ranks.

    ``ranking`` is an ordering of item indices (best first); ``protected``
    is the per-item 0/1 protected indicator.
    """
    protected = check_binary_labels(protected, "protected")
    items = list(ranking)[:k]
    if not items:
        raise ValidationError("ranking must not be empty")
    idx = np.asarray(items, dtype=np.intp)
    if idx.min() < 0 or idx.max() >= protected.size:
        raise ValidationError("ranking contains item ids outside the protected vector")
    return float(protected[idx].mean())
