"""Threshold curves: ROC, precision-recall, calibration.

Supplementary diagnostics used by the audit examples and available to
downstream users; :func:`roc_curve`'s trapezoidal area agrees with the
rank-based :func:`repro.metrics.classification.roc_auc` (tested).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_binary_labels, check_vector


def roc_curve(y_true, scores) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ROC points ``(fpr, tpr, thresholds)`` sorted by threshold desc.

    Includes the (0, 0) and (1, 1) endpoints.  Tied scores collapse to
    a single point, so the curve is a step function without artefacts.
    """
    y_true = check_binary_labels(y_true, "y_true")
    scores = check_vector(scores, "scores", length=y_true.size)
    n_pos = float(np.sum(y_true == 1))
    n_neg = y_true.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValidationError("roc_curve needs both classes")
    order = np.argsort(-scores, kind="mergesort")
    sorted_scores = scores[order]
    sorted_true = y_true[order]
    tp = np.cumsum(sorted_true)
    fp = np.cumsum(1.0 - sorted_true)
    # Keep only the last index of each tied-score run.
    distinct = np.flatnonzero(np.diff(sorted_scores) != 0.0)
    idx = np.concatenate([distinct, [y_true.size - 1]])
    tpr = np.concatenate([[0.0], tp[idx] / n_pos])
    fpr = np.concatenate([[0.0], fp[idx] / n_neg])
    thresholds = np.concatenate([[np.inf], sorted_scores[idx]])
    return fpr, tpr, thresholds


def auc_trapezoid(fpr, tpr) -> float:
    """Area under a piecewise-linear curve via the trapezoid rule."""
    fpr = check_vector(fpr, "fpr")
    tpr = check_vector(tpr, "tpr", length=fpr.size)
    if np.any(np.diff(fpr) < 0):
        raise ValidationError("fpr must be non-decreasing")
    # np.trapz was removed in numpy 2; integrate manually.
    widths = np.diff(fpr)
    heights = 0.5 * (tpr[1:] + tpr[:-1])
    return float(np.sum(widths * heights))


def precision_recall_curve(y_true, scores) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Precision-recall points ``(precision, recall, thresholds)``.

    Sorted by decreasing threshold; recall is non-decreasing along the
    returned arrays.
    """
    y_true = check_binary_labels(y_true, "y_true")
    scores = check_vector(scores, "scores", length=y_true.size)
    n_pos = float(np.sum(y_true == 1))
    if n_pos == 0:
        raise ValidationError("precision_recall_curve needs positive samples")
    order = np.argsort(-scores, kind="mergesort")
    sorted_scores = scores[order]
    sorted_true = y_true[order]
    tp = np.cumsum(sorted_true)
    predicted = np.arange(1, y_true.size + 1, dtype=np.float64)
    distinct = np.flatnonzero(np.diff(sorted_scores) != 0.0)
    idx = np.concatenate([distinct, [y_true.size - 1]])
    precision = tp[idx] / predicted[idx]
    recall = tp[idx] / n_pos
    return precision, recall, sorted_scores[idx]


def calibration_curve(
    y_true, probabilities, n_bins: int = 10
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reliability diagram data.

    Bins predictions into ``n_bins`` equal-width probability bins and
    returns ``(mean_predicted, fraction_positive, counts)`` per
    non-empty bin.  A perfectly calibrated model has
    ``mean_predicted == fraction_positive``.
    """
    y_true = check_binary_labels(y_true, "y_true")
    probabilities = check_vector(probabilities, "probabilities", length=y_true.size)
    if np.any((probabilities < 0) | (probabilities > 1)):
        raise ValidationError("probabilities must lie in [0, 1]")
    if n_bins < 1:
        raise ValidationError("n_bins must be positive")
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    bins = np.clip(np.digitize(probabilities, edges[1:-1]), 0, n_bins - 1)
    mean_pred, frac_pos, counts = [], [], []
    for b in range(n_bins):
        mask = bins == b
        if not np.any(mask):
            continue
        mean_pred.append(float(probabilities[mask].mean()))
        frac_pos.append(float(y_true[mask].mean()))
        counts.append(int(mask.sum()))
    return np.asarray(mean_pred), np.asarray(frac_pos), np.asarray(counts)


def expected_calibration_error(y_true, probabilities, n_bins: int = 10) -> float:
    """ECE: count-weighted mean |confidence - accuracy| over bins."""
    mean_pred, frac_pos, counts = calibration_curve(y_true, probabilities, n_bins)
    weights = counts / counts.sum()
    return float(np.sum(weights * np.abs(mean_pred - frac_pos)))
