"""Ranking utility metrics: Kendall's tau, AP@k / MAP, NDCG@k.

Kendall's tau uses the tau-b formulation (tie-corrected) computed with
a merge-sort inversion count, O(n log n).  Average precision follows
the convention used for the paper's MAP(AP@10): the "relevant" set is
the true top-k of the ground-truth ordering.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_vector


def _merge_count(values: np.ndarray) -> int:
    """Count inversions in ``values`` via iterative merge sort."""
    n = values.size
    arr = values.astype(np.float64, copy=True)
    buf = np.empty_like(arr)
    inversions = 0
    width = 1
    while width < n:
        for lo in range(0, n, 2 * width):
            mid = min(lo + width, n)
            hi = min(lo + 2 * width, n)
            i, j, k = lo, mid, lo
            while i < mid and j < hi:
                if arr[i] <= arr[j]:
                    buf[k] = arr[i]
                    i += 1
                else:
                    buf[k] = arr[j]
                    inversions += mid - i
                    j += 1
                k += 1
            while i < mid:
                buf[k] = arr[i]
                i += 1
                k += 1
            while j < hi:
                buf[k] = arr[j]
                j += 1
                k += 1
        arr, buf = buf, arr
        width *= 2
    return inversions


def _tie_pair_count(values: np.ndarray) -> int:
    """Number of tied pairs, sum over groups of n_g choose 2."""
    _, counts = np.unique(values, return_counts=True)
    return int(np.sum(counts * (counts - 1) // 2))


def kendall_tau(a, b) -> float:
    """Tie-corrected Kendall's tau-b between two score vectors.

    Returns a value in [-1, 1]; 1 for identical orderings, -1 for
    exactly reversed orderings (absent ties).
    """
    a = check_vector(a, "a")
    b = check_vector(b, "b", length=a.size)
    n = a.size
    if n < 2:
        raise ValidationError("kendall_tau needs at least two items")
    total = n * (n - 1) // 2
    # Sort by a (breaking ties by b) and count discordant pairs as
    # inversions in the b sequence.
    order = np.lexsort((b, a))
    b_sorted = b[order]
    a_sorted = a[order]
    discordant = _merge_count(b_sorted)
    ties_a = _tie_pair_count(a)
    ties_b = _tie_pair_count(b)
    # Pairs tied in a AND b should not count as discordant; with the
    # lexsort they appear in non-decreasing b order, contributing 0
    # inversions, so no correction is needed there.  Pairs tied in a
    # but not b also contribute 0 by the same argument.
    ties_both = 0
    i = 0
    while i < n:
        j = i
        while j + 1 < n and a_sorted[j + 1] == a_sorted[i]:
            j += 1
        ties_both += _tie_pair_count(b_sorted[i : j + 1])
        i = j + 1
    concordant = total - discordant - ties_a - ties_b + ties_both
    denom = np.sqrt(float(total - ties_a) * float(total - ties_b))
    if denom == 0.0:
        return 0.0
    return float((concordant - discordant) / denom)


def average_precision_at_k(true_ranking: Sequence[int], pred_ranking: Sequence[int], k: int = 10) -> float:
    """AP@k of a predicted ranking against a ground-truth ranking.

    Both arguments are orderings (sequences of item ids, best first).
    The relevant set is the top-``k`` of ``true_ranking``; the score is
    the usual average of precision@i at each hit within the predicted
    top-``k``, normalised by ``min(k, |relevant|)``.
    """
    if k < 1:
        raise ValidationError("k must be at least 1")
    true_list = list(true_ranking)
    pred_list = list(pred_ranking)
    if not true_list or not pred_list:
        raise ValidationError("rankings must not be empty")
    relevant = set(true_list[:k])
    hits = 0
    precision_sum = 0.0
    for i, item in enumerate(pred_list[:k], start=1):
        if item in relevant:
            hits += 1
            precision_sum += hits / i
    denom = min(k, len(relevant))
    return float(precision_sum / denom)


def mean_average_precision(
    true_rankings: Sequence[Sequence[int]],
    pred_rankings: Sequence[Sequence[int]],
    k: int = 10,
) -> float:
    """Mean of AP@k over query pairs (the paper's MAP)."""
    if len(true_rankings) != len(pred_rankings):
        raise ValidationError("need the same number of true and predicted rankings")
    if not true_rankings:
        raise ValidationError("need at least one query")
    scores = [
        average_precision_at_k(t, p, k=k)
        for t, p in zip(true_rankings, pred_rankings)
    ]
    return float(np.mean(scores))


def ndcg_at_k(true_scores, pred_ranking: Sequence[int], k: int = 10) -> float:
    """NDCG@k with linear gains, for supplementary ranking evaluation.

    ``true_scores`` maps item id -> relevance via array indexing, and
    ``pred_ranking`` is an ordering of item ids.
    """
    true_scores = check_vector(true_scores, "true_scores")
    if k < 1:
        raise ValidationError("k must be at least 1")
    pred = list(pred_ranking)[:k]
    if not pred:
        raise ValidationError("pred_ranking must not be empty")
    discounts = 1.0 / np.log2(np.arange(2, len(pred) + 2))
    dcg = float(np.sum(true_scores[np.asarray(pred, dtype=np.intp)] * discounts))
    ideal = np.sort(true_scores)[::-1][:k]
    idcg = float(np.sum(ideal * (1.0 / np.log2(np.arange(2, ideal.size + 2)))))
    if idcg == 0.0:
        return 0.0
    return dcg / idcg
