"""Information-obfuscation audit (Figure 4 of the paper).

A representation leaks protected information if an adversary can train
a classifier to recover group membership from it.  The audit trains a
logistic regression on a split of the representation and reports its
held-out accuracy — lower (closer to the majority-class rate / 0.5) is
better.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.learners.logistic import LogisticRegression
from repro.utils.rng import RandomStateLike, check_random_state
from repro.utils.validation import check_binary_labels, check_matrix
from repro.exceptions import ValidationError


def adversarial_accuracy(
    Z,
    protected,
    *,
    test_fraction: float = 0.3,
    l2: float = 1.0,
    random_state: RandomStateLike = 0,
) -> float:
    """Held-out accuracy of predicting ``protected`` from representation ``Z``.

    Parameters
    ----------
    Z:
        The data representation under audit (rows = individuals).
    protected:
        0/1 group membership per row.
    test_fraction:
        Fraction of rows held out to score the adversary.
    l2:
        Regularisation of the adversary's logistic regression.
    random_state:
        Controls the train/test shuffle.
    """
    Z = check_matrix(Z, "Z")
    protected = check_binary_labels(protected, "protected", length=Z.shape[0])
    if not 0.0 < test_fraction < 1.0:
        raise ValidationError("test_fraction must be in (0, 1)")
    rng = check_random_state(random_state)
    n = Z.shape[0]
    n_test = max(1, int(round(n * test_fraction)))
    if n - n_test < 2:
        raise ValidationError("not enough rows to split for the adversarial audit")
    perm = rng.permutation(n)
    test_idx, train_idx = perm[:n_test], perm[n_test:]
    y_train = protected[train_idx]
    if np.unique(y_train).size < 2:
        # The adversary cannot train; fall back to majority-class accuracy.
        majority = float(np.round(protected[train_idx].mean()))
        return float(np.mean(protected[test_idx] == majority))
    adversary = LogisticRegression(l2=l2).fit(Z[train_idx], y_train)
    predictions = adversary.predict(Z[test_idx])
    return float(np.mean(predictions == protected[test_idx]))
