"""Evaluation measures used by the paper (Section V-C).

Utility: accuracy, ROC-AUC (classification); Kendall's tau, AP@k, MAP
(ranking).  Individual fairness: consistency yNN.  Group fairness:
statistical parity, equality of opportunity, protected share in top-k.
Obfuscation: adversarial accuracy of recovering the protected group.
"""

from repro.metrics.classification import accuracy, confusion_counts, roc_auc
from repro.metrics.ranking import (
    average_precision_at_k,
    kendall_tau,
    mean_average_precision,
    ndcg_at_k,
)
from repro.metrics.individual import consistency
from repro.metrics.group import (
    equal_opportunity,
    protected_share_at_k,
    statistical_parity,
)
from repro.metrics.obfuscation import adversarial_accuracy
from repro.metrics.curves import (
    auc_trapezoid,
    calibration_curve,
    expected_calibration_error,
    precision_recall_curve,
    roc_curve,
)

__all__ = [
    "auc_trapezoid",
    "calibration_curve",
    "expected_calibration_error",
    "precision_recall_curve",
    "roc_curve",
    "accuracy",
    "confusion_counts",
    "roc_auc",
    "average_precision_at_k",
    "kendall_tau",
    "mean_average_precision",
    "ndcg_at_k",
    "consistency",
    "equal_opportunity",
    "protected_share_at_k",
    "statistical_parity",
    "adversarial_accuracy",
]
