"""Classification utility metrics: accuracy, confusion counts, ROC-AUC.

ROC-AUC is computed by the rank statistic (Mann-Whitney U) with proper
handling of tied scores, which is exact and O(n log n).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_binary_labels, check_vector


def accuracy(y_true, y_pred) -> float:
    """Fraction of exactly matching labels."""
    y_true = check_binary_labels(y_true, "y_true")
    y_pred = check_binary_labels(y_pred, "y_pred", length=y_true.size)
    return float(np.mean(y_true == y_pred))


def confusion_counts(y_true, y_pred) -> Dict[str, int]:
    """True/false positive/negative counts as a dict."""
    y_true = check_binary_labels(y_true, "y_true")
    y_pred = check_binary_labels(y_pred, "y_pred", length=y_true.size)
    tp = int(np.sum((y_true == 1) & (y_pred == 1)))
    tn = int(np.sum((y_true == 0) & (y_pred == 0)))
    fp = int(np.sum((y_true == 0) & (y_pred == 1)))
    fn = int(np.sum((y_true == 1) & (y_pred == 0)))
    return {"tp": tp, "tn": tn, "fp": fp, "fn": fn}


def _rank_with_ties(scores: np.ndarray) -> np.ndarray:
    """Average ranks (1-based) with ties sharing the mean rank."""
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(scores.size, dtype=np.float64)
    sorted_scores = scores[order]
    i = 0
    while i < scores.size:
        j = i
        while j + 1 < scores.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        # positions i..j (0-based) share the average 1-based rank
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    return ranks


def roc_auc(y_true, scores) -> float:
    """Area under the ROC curve via the Mann-Whitney U statistic.

    Requires both classes to be present; raises otherwise because an
    AUC is undefined for a single-class sample.
    """
    y_true = check_binary_labels(y_true, "y_true")
    scores = check_vector(scores, "scores", length=y_true.size)
    n_pos = int(np.sum(y_true == 1))
    n_neg = y_true.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValidationError("roc_auc needs both positive and negative samples")
    ranks = _rank_with_ties(scores)
    rank_sum_pos = float(np.sum(ranks[y_true == 1]))
    u = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return float(u / (n_pos * n_neg))
