"""Individual-fairness metric: consistency (yNN).

Definition (Section V-C, with the paper's footnote-1 bug fix):

    yNN = 1 - (1 / (M k)) * sum_i sum_{j in kNN(x*_i)} |yhat_i - yhat_j|

Neighbours are found in the *original, non-protected* attribute space
``X*`` while the predictions ``yhat`` come from whatever representation
the downstream model was trained on.  A score of 1 means every record
receives the same outcome as all of its qualification-neighbours.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.learners.knn import KNearestNeighbors
from repro.utils.validation import check_matrix, check_vector


# Above this many records, the kNN search runs in row blocks so the
# metric never materialises the full (M, M) distance matrix.
_AUTO_BLOCK_THRESHOLD = 2048
_AUTO_BLOCK_ROWS = 1024


def consistency(
    X_nonprotected, y_hat, k: int = 10, *, block_size: Optional[int] = None
) -> float:
    """Consistency yNN of outcomes ``y_hat`` w.r.t. neighbours in X*.

    Parameters
    ----------
    X_nonprotected:
        Records restricted to their non-protected attributes (the
        space in which "similar individuals" is judged).
    y_hat:
        Outcomes being audited: hard labels, probabilities, or ranking
        scores scaled to [0, 1].
    k:
        Neighbourhood size (the paper uses 10).
    block_size:
        Rows per kNN distance block.  Defaults to an automatic policy:
        full-matrix search for small inputs, blocked search above
        ~2k records so peak memory stays ``O(block * M)``.  Blocked
        and unblocked searches return the same neighbours up to exact
        distance ties.
    """
    X = check_matrix(X_nonprotected, "X_nonprotected")
    y_hat = check_vector(y_hat, "y_hat", length=X.shape[0])
    if X.shape[0] <= k:
        raise ValidationError(
            f"consistency with k={k} needs more than {k} records, got {X.shape[0]}"
        )
    if block_size is None and X.shape[0] > _AUTO_BLOCK_THRESHOLD:
        block_size = _AUTO_BLOCK_ROWS
    index = KNearestNeighbors(k=k).fit(X)
    neighbors = index.kneighbors(exclude_self=True, block_size=block_size)
    diffs = np.abs(y_hat[:, None] - y_hat[neighbors])
    return float(1.0 - diffs.mean())


def consistency_of_scores(X_nonprotected, scores, k: int = 10) -> float:
    """Consistency for unbounded scores, min-max scaled into [0, 1].

    Ranking scores are not probabilities; scaling them first keeps the
    metric within [0, 1] and comparable across models (this mirrors how
    consistency is reported for the learning-to-rank task).
    """
    scores = check_vector(scores, "scores")
    lo, hi = float(scores.min()), float(scores.max())
    if hi > lo:
        scaled = (scores - lo) / (hi - lo)
    else:
        scaled = np.zeros_like(scores)
    return consistency(X_nonprotected, scaled, k=k)
