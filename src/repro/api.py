"""The stable public API of the library.

``repro.api`` is the supported import surface: every name in
``__all__`` is covered by the compatibility promise — it keeps its
signature and semantics across minor releases, and tier-1 tests pin
its behaviour.  Code should import from here::

    from repro.api import IFair, fit_serving_pipeline, serve_artifact

Internal module paths (``repro.core.model``, ``repro.serving.engine``,
...) keep working but are *not* stable: refactors may move them
without notice.  Names that exist on the root package but are not part
of the stable surface can still be reached through this module for one
deprecation cycle — attribute access forwards to :mod:`repro` with a
:class:`DeprecationWarning` naming the supported spelling.

The surface, by layer:

* **Models** — :class:`IFair` (the paper's learner, including
  ``partial_fit`` online updates), :class:`LFR` (the closest
  baseline), and :class:`ParamsMixin` (the sklearn-compatible
  ``get_params``/``set_params`` protocol both speak).
* **Serving** — :func:`fit_serving_pipeline` to package a fitted
  pipeline, :func:`save_artifact`/:func:`load_artifact` for the
  versioned on-disk artifact, :func:`serve_artifact` +
  :class:`DecisionService`/:class:`InferenceEngine` to answer
  requests, :class:`InProcessClient`/:class:`HTTPClient` to make
  them, and :class:`ServingArtifact` itself.
* **Online operation** — :class:`FairnessMonitor` (drift detection
  over served decisions), :class:`OnlineController` +
  :class:`DriftPolicy` + :data:`DRIFT_POLICIES` (the drift-response
  loop: sliding-window warm refits and blue/green hot reloads).
* **Errors** — the exception hierarchy callers are expected to catch.
"""

from __future__ import annotations

import warnings

from repro.baselines import LFR
from repro.core import IFair
from repro.exceptions import (
    NotFittedError,
    ReproError,
    SchemaError,
    ValidationError,
)
from repro.learners.base import ParamsMixin
from repro.serving import (
    DRIFT_POLICIES,
    DecisionService,
    DriftPolicy,
    HTTPClient,
    InferenceEngine,
    InProcessClient,
    OnlineController,
    ServingArtifact,
    fit_serving_pipeline,
    load_artifact,
    save_artifact,
    serve_artifact,
)
from repro.telemetry.fairness import FairnessMonitor

__all__ = [
    # models
    "IFair",
    "LFR",
    "ParamsMixin",
    # serving
    "ServingArtifact",
    "fit_serving_pipeline",
    "save_artifact",
    "load_artifact",
    "serve_artifact",
    "InferenceEngine",
    "DecisionService",
    "InProcessClient",
    "HTTPClient",
    # online operation
    "FairnessMonitor",
    "OnlineController",
    "DriftPolicy",
    "DRIFT_POLICIES",
    # errors
    "ReproError",
    "ValidationError",
    "NotFittedError",
    "SchemaError",
]


def __getattr__(name: str):
    """Deprecation shim: forward legacy names to the root package.

    Lets ``repro.api`` stand in for older ``import repro`` call sites
    (e.g. ``repro.api.SVDTransform``) while steering them — loudly but
    non-fatally — toward the supported spelling.
    """
    import repro

    if not name.startswith("_") and hasattr(repro, name):
        warnings.warn(
            f"repro.api.{name} is not part of the stable API; "
            f"import it from the root package (repro.{name}) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(repro, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
