"""L2-regularised logistic regression trained with L-BFGS.

This is the "standard classifier" the paper applies to every data
representation (Section V-B).  The implementation minimises the mean
cross-entropy plus an L2 penalty on the weights (never the intercept)
with analytic gradients.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import optimize

from repro.exceptions import ValidationError
from repro.learners.base import Classifier
from repro.utils.mathkit import sigmoid
from repro.utils.validation import check_binary_labels, check_matrix


class LogisticRegression(Classifier):
    """Binary logistic regression.

    Parameters
    ----------
    l2:
        Strength of the L2 penalty on the weight vector (not the
        intercept).  ``0`` disables regularisation.
    max_iter:
        L-BFGS iteration budget.
    tol:
        L-BFGS gradient tolerance.
    """

    def __init__(self, l2: float = 1.0, max_iter: int = 500, tol: float = 1e-8):
        if l2 < 0:
            raise ValidationError("l2 must be non-negative")
        self.l2 = float(l2)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    @staticmethod
    def _loss_grad(theta: np.ndarray, X: np.ndarray, y: np.ndarray, l2: float):
        """Mean log-loss and gradient for packed params [intercept, w]."""
        intercept, w = theta[0], theta[1:]
        z = X @ w + intercept
        p = sigmoid(z)
        eps = 1e-12
        loss = -np.mean(y * np.log(p + eps) + (1.0 - y) * np.log(1.0 - p + eps))
        loss += 0.5 * l2 * np.dot(w, w) / X.shape[0]
        residual = (p - y) / X.shape[0]
        grad = np.empty_like(theta)
        grad[0] = residual.sum()
        grad[1:] = X.T @ residual + l2 * w / X.shape[0]
        return loss, grad

    def fit(self, X, y) -> "LogisticRegression":
        X = check_matrix(X, "X")
        y = check_binary_labels(y, "y", length=X.shape[0])
        theta0 = np.zeros(X.shape[1] + 1)
        result = optimize.minimize(
            self._loss_grad,
            theta0,
            args=(X, y, self.l2),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter, "gtol": self.tol},
        )
        self.intercept_ = float(result.x[0])
        self.coef_ = result.x[1:].copy()
        self._fitted = True
        return self

    def decision_function(self, X) -> np.ndarray:
        """Raw linear scores ``X @ w + b``."""
        self._check_fitted()
        X = check_matrix(X, "X")
        if X.shape[1] != self.coef_.shape[0]:
            raise ValidationError(
                f"X has {X.shape[1]} features, model was fitted with {self.coef_.shape[0]}"
            )
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        """P(y=1 | x) for each row."""
        return sigmoid(self.decision_function(X))
