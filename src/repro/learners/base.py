"""Estimator protocols shared by all learners.

The library follows the familiar fit/predict convention.  These bases
exist so the pipeline code can express "any classifier" or "any
regressor" without importing a specific implementation, and so every
estimator speaks one sklearn-compatible parameter protocol:

* ``get_params(deep=True)`` — constructor arguments by introspection of
  ``__init__`` (the sklearn convention: every constructor argument is
  stored under an attribute of the same name, unmodified validation
  aside).  The zero-argument call keeps its historical meaning — a
  picklable dict of the public constructor parameters — which is what
  the executor's worker-state channel and the serving artifact
  round-trip rely on.
* ``set_params(**params)`` — re-runs ``__init__`` with the merged
  parameters so every constructor validation fires eagerly, then
  restores the fitted state (underscore-suffixed and underscore-
  prefixed attributes), matching sklearn's contract that ``set_params``
  does not un-fit an estimator.

Together these give ``sklearn.base.clone`` exactly what it needs:
``type(est)(**est.get_params())`` reconstructs an equivalent unfitted
estimator, and cloning round-trips every parameter by identity or
value.
"""

from __future__ import annotations

import abc
import inspect

import numpy as np

from repro.exceptions import NotFittedError, ValidationError


class ParamsMixin:
    """sklearn-compatible ``get_params`` / ``set_params`` by introspection.

    Requires the sklearn estimator convention the whole library already
    follows: every explicit ``__init__`` argument is stored under an
    instance attribute of the same name.
    """

    @classmethod
    def _get_param_names(cls):
        """Constructor argument names, in declaration order."""
        init = cls.__init__
        if init is object.__init__:
            return []
        names = []
        for parameter in inspect.signature(init).parameters.values():
            if parameter.name == "self":
                continue
            if parameter.kind in (
                inspect.Parameter.VAR_POSITIONAL,
                inspect.Parameter.VAR_KEYWORD,
            ):
                raise ValidationError(
                    f"{cls.__name__}.__init__ must spell out its parameters "
                    "explicitly to support get_params/set_params"
                )
            names.append(parameter.name)
        return names

    def get_params(self, deep: bool = True) -> dict:
        """Constructor arguments of this estimator (picklable).

        With ``deep=True`` (the default, and the sklearn semantics),
        parameters that are themselves estimators additionally
        contribute their own parameters under ``<name>__<subname>``
        keys.  No current estimator nests another, so the default and
        the historical zero-argument behaviour coincide.
        """
        out: dict = {}
        for name in self._get_param_names():
            value = getattr(self, name)
            out[name] = value
            if deep and hasattr(value, "get_params") and not isinstance(value, type):
                for sub_name, sub_value in value.get_params().items():
                    out[f"{name}__{sub_name}"] = sub_value
        return out

    def set_params(self, **params) -> "ParamsMixin":
        """Update constructor parameters in place; returns ``self``.

        Unknown names raise :class:`~repro.exceptions.ValidationError`
        (listing the valid ones), constructor validation runs eagerly
        on the merged parameter set, and fitted state survives — the
        sklearn contract ``GridSearchCV`` and ``clone`` assume.
        """
        if not params:
            return self
        valid = self._get_param_names()
        nested: dict = {}
        updates: dict = {}
        for key, value in params.items():
            name, delim, sub_key = key.partition("__")
            if name not in valid:
                raise ValidationError(
                    f"invalid parameter {name!r} for {type(self).__name__}; "
                    f"valid parameters are {sorted(valid)}"
                )
            if delim:
                nested.setdefault(name, {})[sub_key] = value
            else:
                updates[name] = value
        if updates:
            merged = {name: getattr(self, name) for name in valid}
            merged.update(updates)
            # __init__ re-validates the full parameter set but also
            # resets fitted attributes — snapshot and restore them so
            # set_params never un-fits the estimator.
            preserved = {
                key: value
                for key, value in vars(self).items()
                if key.startswith("_") or key.endswith("_")
            }
            self.__init__(**merged)
            vars(self).update(preserved)
        for name, sub_params in nested.items():
            getattr(self, name).set_params(**sub_params)
        return self


class BaseEstimator(ParamsMixin, abc.ABC):
    """Common plumbing: fitted-state tracking and parameter reporting."""

    _fitted: bool = False

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before calling this method"
            )


class Classifier(BaseEstimator):
    """A binary classifier with probability outputs."""

    @abc.abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "Classifier":
        """Train on feature matrix ``X`` and 0/1 labels ``y``."""

    @abc.abstractmethod
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Probability of the positive class for each row of ``X``."""

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions by thresholding ``predict_proba``."""
        return (self.predict_proba(X) >= threshold).astype(np.float64)


class Regressor(BaseEstimator):
    """A real-valued regressor."""

    @abc.abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "Regressor":
        """Train on feature matrix ``X`` and real targets ``y``."""

    @abc.abstractmethod
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted targets for each row of ``X``."""
