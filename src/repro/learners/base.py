"""Estimator protocols shared by all learners.

The library follows the familiar fit/predict convention.  These tiny
abstract bases exist so the pipeline code can express "any classifier"
or "any regressor" without importing a specific implementation.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import NotFittedError


class BaseEstimator(abc.ABC):
    """Common plumbing: fitted-state tracking and parameter reporting."""

    _fitted: bool = False

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before calling this method"
            )

    def get_params(self) -> dict:
        """Public constructor parameters (attributes without underscore)."""
        return {
            key: value
            for key, value in vars(self).items()
            if not key.startswith("_") and not key.endswith("_")
        }


class Classifier(BaseEstimator):
    """A binary classifier with probability outputs."""

    @abc.abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "Classifier":
        """Train on feature matrix ``X`` and 0/1 labels ``y``."""

    @abc.abstractmethod
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Probability of the positive class for each row of ``X``."""

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions by thresholding ``predict_proba``."""
        return (self.predict_proba(X) >= threshold).astype(np.float64)


class Regressor(BaseEstimator):
    """A real-valued regressor."""

    @abc.abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "Regressor":
        """Train on feature matrix ``X`` and real targets ``y``."""

    @abc.abstractmethod
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted targets for each row of ``X``."""
