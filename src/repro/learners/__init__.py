"""Downstream predictive models implemented from scratch.

The paper evaluates representations by training a standard logistic
regression (classification) and a linear regression (learning-to-rank)
on top of them.  This subpackage provides those learners plus the
preprocessing pieces (standard scaler, one-hot encoder) and a kNN
searcher used by the consistency metric — all pure numpy/scipy, no
scikit-learn.
"""

from repro.learners.base import Classifier, Regressor
from repro.learners.encoder import OneHotEncoder
from repro.learners.knn import KNearestNeighbors
from repro.learners.linear import LinearRegression, RidgeRegression
from repro.learners.logistic import LogisticRegression
from repro.learners.scaler import StandardScaler

__all__ = [
    "Classifier",
    "Regressor",
    "OneHotEncoder",
    "KNearestNeighbors",
    "LinearRegression",
    "RidgeRegression",
    "LogisticRegression",
    "StandardScaler",
]
