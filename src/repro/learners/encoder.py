"""One-hot encoding of categorical columns.

The paper unfolds every categorical attribute into binary indicator
columns before learning representations (Section V-B); the documented
dataset dimensionalities in Table II are post-unfolding.  This encoder
works on object/str or integer category codes and keeps numeric columns
untouched.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import NotFittedError, ValidationError


class OneHotEncoder:
    """Expand selected columns of a mixed matrix into indicators.

    Parameters
    ----------
    categorical_columns:
        Indices (into the raw input columns) to one-hot encode.  All
        other columns are coerced to float and passed through in input
        order, followed by the indicator blocks.

    Attributes
    ----------
    categories_:
        Mapping column index -> sorted list of categories seen in fit.
    feature_names_:
        Output column names, ``col{i}`` for numeric pass-through and
        ``col{i}={category}`` for indicators.
    """

    def __init__(self, categorical_columns: Sequence[int]):
        self.categorical_columns = sorted(set(int(c) for c in categorical_columns))
        self.categories_: Dict[int, List] = {}
        self.feature_names_: List[str] = []
        self._n_input_cols: Optional[int] = None

    def _split_columns(self, X: np.ndarray) -> Tuple[List[int], List[int]]:
        n_cols = X.shape[1]
        cat = [c for c in self.categorical_columns if c < n_cols]
        if len(cat) != len(self.categorical_columns):
            raise ValidationError(
                f"categorical column index out of range for input with {n_cols} columns"
            )
        num = [c for c in range(n_cols) if c not in set(cat)]
        return num, cat

    def fit(self, X) -> "OneHotEncoder":
        X = np.asarray(X, dtype=object)
        if X.ndim != 2 or X.size == 0:
            raise ValidationError("X must be a non-empty 2-D array")
        self._n_input_cols = X.shape[1]
        num, cat = self._split_columns(X)
        self.categories_ = {
            c: sorted(set(X[:, c].tolist()), key=repr) for c in cat
        }
        self.feature_names_ = [f"col{c}" for c in num]
        for c in cat:
            self.feature_names_.extend(
                f"col{c}={value}" for value in self.categories_[c]
            )
        return self

    def transform(self, X) -> np.ndarray:
        if self._n_input_cols is None:
            raise NotFittedError("OneHotEncoder must be fitted before transform")
        X = np.asarray(X, dtype=object)
        if X.ndim != 2:
            raise ValidationError("X must be 2-D")
        if X.shape[1] != self._n_input_cols:
            raise ValidationError(
                f"X has {X.shape[1]} columns, encoder was fitted with {self._n_input_cols}"
            )
        num, cat = self._split_columns(X)
        blocks = []
        if num:
            try:
                blocks.append(X[:, num].astype(np.float64))
            except (TypeError, ValueError) as exc:
                raise ValidationError(f"non-numeric value in numeric column: {exc}")
        for c in cat:
            cats = self.categories_[c]
            block = np.zeros((X.shape[0], len(cats)))
            index = {value: j for j, value in enumerate(cats)}
            for i, value in enumerate(X[:, c].tolist()):
                j = index.get(value)
                if j is not None:  # unseen categories encode as all-zero
                    block[i, j] = 1.0
            blocks.append(block)
        return np.hstack(blocks) if blocks else np.empty((X.shape[0], 0))

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def output_indices_for(self, column: int) -> List[int]:
        """Output column positions produced by raw input ``column``."""
        if self._n_input_cols is None:
            raise NotFittedError("OneHotEncoder must be fitted first")
        name_prefixes = (f"col{column}", f"col{column}=")
        return [
            j
            for j, name in enumerate(self.feature_names_)
            if name == name_prefixes[0] or name.startswith(name_prefixes[1])
        ]
