"""Ordinary least squares and ridge regression.

The learning-to-rank experiments (Section V-E) train a plain linear
regression on each representation to produce candidate scores.  Both
models solve their normal equations directly; ridge adds Tikhonov
damping on the weights (never the intercept).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.learners.base import Regressor
from repro.utils.validation import check_matrix, check_vector


class LinearRegression(Regressor):
    """Least-squares linear regression with intercept."""

    def __init__(self):
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def fit(self, X, y) -> "LinearRegression":
        X = check_matrix(X, "X")
        y = check_vector(y, "y", length=X.shape[0])
        design = np.hstack([np.ones((X.shape[0], 1)), X])
        theta, *_ = np.linalg.lstsq(design, y, rcond=None)
        self.intercept_ = float(theta[0])
        self.coef_ = theta[1:].copy()
        self._fitted = True
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_matrix(X, "X")
        if X.shape[1] != self.coef_.shape[0]:
            raise ValidationError(
                f"X has {X.shape[1]} features, model was fitted with {self.coef_.shape[0]}"
            )
        return X @ self.coef_ + self.intercept_


class RidgeRegression(Regressor):
    """Linear regression with an L2 penalty ``l2 * ||w||^2``.

    Solves ``(X'X + l2*I) w = X'y`` on centred data so the intercept is
    not penalised.
    """

    def __init__(self, l2: float = 1.0):
        if l2 < 0:
            raise ValidationError("l2 must be non-negative")
        self.l2 = float(l2)
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def fit(self, X, y) -> "RidgeRegression":
        X = check_matrix(X, "X")
        y = check_vector(y, "y", length=X.shape[0])
        x_mean = X.mean(axis=0)
        y_mean = y.mean()
        Xc = X - x_mean
        yc = y - y_mean
        gram = Xc.T @ Xc + self.l2 * np.eye(X.shape[1])
        self.coef_ = np.linalg.solve(gram, Xc.T @ yc)
        self.intercept_ = float(y_mean - x_mean @ self.coef_)
        self._fitted = True
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_matrix(X, "X")
        if X.shape[1] != self.coef_.shape[0]:
            raise ValidationError(
                f"X has {X.shape[1]} features, model was fitted with {self.coef_.shape[0]}"
            )
        return X @ self.coef_ + self.intercept_
