"""Feature standardisation.

Section V-B: "all feature vectors are normalized to have unit
variance".  :class:`StandardScaler` divides by the per-column standard
deviation (optionally also centring); constant columns are passed
through unchanged to avoid division by zero.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.learners.base import BaseEstimator
from repro.utils.validation import check_matrix


class StandardScaler(BaseEstimator):
    """Scale columns to unit variance, optionally zero mean.

    Parameters
    ----------
    with_mean:
        Subtract the column mean before scaling.  The paper only
        normalises variance, so the default is ``False``.
    """

    def __init__(self, with_mean: bool = False):
        self.with_mean = bool(with_mean)
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, X) -> "StandardScaler":
        X = check_matrix(X, "X")
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        std = X.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        self._fitted = True
        return self

    def transform(self, X, *, validate: bool = True) -> np.ndarray:
        """Scale ``X``; ``validate=False`` skips the input checks.

        The serving hot path validates records once at ingestion and
        must not pay a second full-matrix finite-value scan per
        request — the arithmetic is identical either way.
        """
        self._check_fitted()
        if validate:
            X = check_matrix(X, "X")
            if X.shape[1] != self.scale_.shape[0]:
                raise ValidationError(
                    f"X has {X.shape[1]} features, scaler was fitted with "
                    f"{self.scale_.shape[0]}"
                )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, Z) -> np.ndarray:
        """Map scaled data back to the original units."""
        self._check_fitted()
        Z = check_matrix(Z, "Z")
        return Z * self.scale_ + self.mean_
