"""Brute-force k-nearest-neighbour search.

The consistency metric yNN (Section V-C) needs, for every record, its
``k`` nearest neighbours *in the original non-protected attribute
space*.  A vectorised brute-force search is exact and fast enough for
the dataset sizes involved.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.learners.base import BaseEstimator
from repro.utils.mathkit import pairwise_sq_euclidean
from repro.utils.validation import check_matrix


class KNearestNeighbors(BaseEstimator):
    """Exact kNN index over a fixed reference set.

    Parameters
    ----------
    k:
        Number of neighbours returned per query point.
    """

    def __init__(self, k: int = 10):
        if k < 1:
            raise ValidationError("k must be at least 1")
        self.k = int(k)
        self._X: Optional[np.ndarray] = None

    def fit(self, X) -> "KNearestNeighbors":
        """Index the reference points ``X``."""
        self._X = check_matrix(X, "X")
        self._fitted = True
        return self

    def kneighbors(
        self,
        Q=None,
        *,
        exclude_self: bool = False,
        block_size: Optional[int] = None,
    ) -> np.ndarray:
        """Indices of the ``k`` nearest reference points per query row.

        Parameters
        ----------
        Q:
            Query matrix; defaults to the indexed points themselves.
        exclude_self:
            When querying the reference set with itself, drop the
            trivial zero-distance self match (the yNN convention).
        block_size:
            Process at most this many query rows per distance-matrix
            block, bounding peak memory at ``O(block_size * n_ref)``
            instead of materialising the full ``(len(Q), n_ref)``
            matrix.  Each query row's neighbours depend only on that
            row, so blocked results equal the unblocked ones up to
            exact distance ties (BLAS may round the last ulp of a
            distance differently for different block heights, which
            can reorder genuinely tied neighbours).

        Returns
        -------
        Integer array of shape ``(len(Q), k)`` sorted by distance.
        """
        self._check_fitted()
        Q = self._X if Q is None else check_matrix(Q, "Q")
        if Q.shape[1] != self._X.shape[1]:
            raise ValidationError(
                f"query has {Q.shape[1]} features, index has {self._X.shape[1]}"
            )
        n_ref = self._X.shape[0]
        budget = self.k + 1 if exclude_self else self.k
        if budget > n_ref:
            raise ValidationError(
                f"requested {budget} neighbours but index holds only {n_ref} points"
            )
        if exclude_self and Q.shape[0] != n_ref:
            raise ValidationError("exclude_self requires querying the indexed set")
        if block_size is not None:
            block_size = int(block_size)
            if block_size < 1:
                raise ValidationError("block_size must be a positive integer")
        n_q = Q.shape[0]
        if block_size is None or n_q <= block_size:
            return self._kneighbors_block(Q, 0, exclude_self)
        out = np.empty((n_q, self.k), dtype=np.intp)
        for start in range(0, n_q, block_size):
            stop = min(start + block_size, n_q)
            out[start:stop] = self._kneighbors_block(Q[start:stop], start, exclude_self)
        return out

    def _kneighbors_block(
        self, Q: np.ndarray, offset: int, exclude_self: bool
    ) -> np.ndarray:
        """Neighbour indices for query rows ``offset .. offset+len(Q)``."""
        k = self.k
        D = pairwise_sq_euclidean(Q, self._X)
        if exclude_self:
            rows = np.arange(Q.shape[0])
            D[rows, offset + rows] = np.inf
        # argpartition for the k smallest, then sort those k by distance.
        part = np.argpartition(D, kth=k - 1, axis=1)[:, :k]
        row_d = np.take_along_axis(D, part, axis=1)
        order = np.argsort(row_d, axis=1, kind="stable")
        return np.take_along_axis(part, order, axis=1)
