"""Brute-force k-nearest-neighbour search.

The consistency metric yNN (Section V-C) needs, for every record, its
``k`` nearest neighbours *in the original non-protected attribute
space*.  A vectorised brute-force search is exact and fast enough for
the dataset sizes involved.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.learners.base import BaseEstimator
from repro.utils.mathkit import pairwise_sq_euclidean
from repro.utils.validation import check_matrix


class KNearestNeighbors(BaseEstimator):
    """Exact kNN index over a fixed reference set.

    Parameters
    ----------
    k:
        Number of neighbours returned per query point.
    """

    def __init__(self, k: int = 10):
        if k < 1:
            raise ValidationError("k must be at least 1")
        self.k = int(k)
        self._X: Optional[np.ndarray] = None

    def fit(self, X) -> "KNearestNeighbors":
        """Index the reference points ``X``."""
        self._X = check_matrix(X, "X")
        self._fitted = True
        return self

    def kneighbors(self, Q=None, *, exclude_self: bool = False) -> np.ndarray:
        """Indices of the ``k`` nearest reference points per query row.

        Parameters
        ----------
        Q:
            Query matrix; defaults to the indexed points themselves.
        exclude_self:
            When querying the reference set with itself, drop the
            trivial zero-distance self match (the yNN convention).

        Returns
        -------
        Integer array of shape ``(len(Q), k)`` sorted by distance.
        """
        self._check_fitted()
        Q = self._X if Q is None else check_matrix(Q, "Q")
        if Q.shape[1] != self._X.shape[1]:
            raise ValidationError(
                f"query has {Q.shape[1]} features, index has {self._X.shape[1]}"
            )
        n_ref = self._X.shape[0]
        k = self.k
        budget = k + 1 if exclude_self else k
        if budget > n_ref:
            raise ValidationError(
                f"requested {budget} neighbours but index holds only {n_ref} points"
            )
        D = pairwise_sq_euclidean(Q, self._X)
        if exclude_self:
            if Q.shape[0] != n_ref:
                raise ValidationError("exclude_self requires querying the indexed set")
            np.fill_diagonal(D, np.inf)
        # argpartition for the k smallest, then sort those k by distance.
        part = np.argpartition(D, kth=k - 1, axis=1)[:, :k]
        row_d = np.take_along_axis(D, part, axis=1)
        order = np.argsort(row_d, axis=1, kind="stable")
        return np.take_along_axis(part, order, axis=1)
