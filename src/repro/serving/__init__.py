"""Online serving: persist fitted pipelines and answer live requests.

The batch pipeline fits and measures; this package serves.  A fitted
pipeline is packaged as a versioned directory artifact
(:mod:`repro.serving.artifacts`), loaded into an
:class:`~repro.serving.engine.InferenceEngine` (micro-batching, LRU
caching, chunked evaluation), and exposed either in process
(:class:`~repro.serving.client.InProcessClient`) or over a stdlib JSON
HTTP API (:class:`~repro.serving.service.DecisionService`).  For
multi-core boxes, :class:`~repro.serving.dispatcher.EngineDispatcher`
fans the same API out to N forked engine workers that share the model
read-only through the shm arena (``serve_artifact(..., workers=N)``).

The dispatcher tier is deadline-aware and self-healing: per-request
deadlines with hung-worker kills and reroute retries, an admission
gate that sheds overload with 429 + ``Retry-After``, a crash-loop
breaker with jittered-backoff respawns and probation-based eviction,
and a :mod:`~repro.serving.chaos` fault plane (``REPRO_CHAOS``) for
testing all of it under injected crash/hang/slow/corrupt faults.
``serve_artifact(..., online_refit=True)`` additionally attaches an
:class:`~repro.serving.online.OnlineController` that answers fairness
drift and covariate shift with warm ``partial_fit`` refits over a
sliding traffic window and blue/green hot-swaps of the refreshed model.

Typical flow::

    artifact = fit_serving_pipeline(generate_compas(1000, random_state=7))
    save_artifact("artifacts/compas", artifact)
    ...
    engine = InferenceEngine(load_artifact("artifacts/compas"))
    client = InProcessClient(engine)
    client.decide(records, groups)
"""

from repro.serving.artifacts import (
    ARTIFACT_VERSION,
    ArtifactError,
    ServingArtifact,
    load_artifact,
    save_artifact,
)
from repro.serving.chaos import CHAOS_ENV, ChaosConfig, ChaosPlane
from repro.serving.client import (
    HTTPClient,
    InProcessClient,
    ServiceError,
    ServiceOverloadedError,
    ServiceUnavailableError,
)
from repro.serving.dispatcher import (
    AdmissionError,
    DispatchError,
    EngineDispatcher,
)
from repro.serving.engine import InferenceEngine, LRUCache, MicroBatcher
from repro.serving.fit import fit_serving_pipeline
from repro.serving.online import DRIFT_POLICIES, DriftPolicy, OnlineController
from repro.serving.service import DecisionService, RequestError, dispatch, serve_artifact

__all__ = [
    "ARTIFACT_VERSION",
    "ArtifactError",
    "ServingArtifact",
    "save_artifact",
    "load_artifact",
    "fit_serving_pipeline",
    "InferenceEngine",
    "LRUCache",
    "MicroBatcher",
    "EngineDispatcher",
    "DispatchError",
    "AdmissionError",
    "CHAOS_ENV",
    "ChaosConfig",
    "ChaosPlane",
    "DRIFT_POLICIES",
    "DriftPolicy",
    "OnlineController",
    "DecisionService",
    "RequestError",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceUnavailableError",
    "dispatch",
    "serve_artifact",
    "InProcessClient",
    "HTTPClient",
]
