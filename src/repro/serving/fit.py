"""Fit a complete serving pipeline from a labelled dataset.

This is the offline half of the serving story: take a
:class:`~repro.data.schema.TabularDataset`, learn scaler -> iFair ->
logistic scorer -> per-group thresholds, and package the result as a
:class:`~repro.serving.artifacts.ServingArtifact` ready for
``save_artifact`` / the ``repro fit-save`` CLI verb.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.model import IFair
from repro.data.schema import TabularDataset
from repro.exceptions import ValidationError
from repro.learners.logistic import LogisticRegression
from repro.learners.scaler import StandardScaler
from repro.posthoc.thresholds import GroupThresholdAdjuster
from repro.serving.artifacts import ServingArtifact


def fit_serving_pipeline(
    dataset: TabularDataset,
    *,
    n_prototypes: int = 10,
    lambda_util: float = 1.0,
    mu_fair: float = 1.0,
    init: str = "protected_zero",
    n_restarts: int = 1,
    max_iter: int = 100,
    max_pairs: Optional[int] = 2000,
    pair_mode: str = "auto",
    n_landmarks: Optional[int] = None,
    landmark_method: str = "kmeans++",
    criterion: str = "parity",
    scorer_l2: float = 1.0,
    random_state: int = 0,
) -> ServingArtifact:
    """Fit scaler + iFair + scorer (+ thresholds) on ``dataset``.

    Classification datasets get the full stack; ranking datasets (real-
    valued ``y``) get scaler + iFair + a scorer trained on the median
    split of the scores, but no thresholds (``decide`` is a
    classification verb).  ``pair_mode="landmark"`` switches the
    fairness oracle to the large-M landmark approximation (and drops
    the default pair subsample, which only applies to ``sampled``).
    """
    if dataset.n_records < 10:
        raise ValidationError("serving pipeline needs at least 10 records")
    if pair_mode in ("full", "landmark"):
        max_pairs = None
    scaler = StandardScaler().fit(dataset.X)
    X = scaler.transform(dataset.X)
    model = IFair(
        n_prototypes=n_prototypes,
        lambda_util=lambda_util,
        mu_fair=mu_fair,
        init=init,
        n_restarts=n_restarts,
        max_iter=max_iter,
        max_pairs=max_pairs,
        pair_mode=pair_mode,
        n_landmarks=n_landmarks,
        landmark_method=landmark_method,
        random_state=random_state,
    ).fit(X, dataset.protected_indices)
    Z = model.transform(X)

    y = dataset.y
    if dataset.task != "classification":
        y = (dataset.y >= np.median(dataset.y)).astype(np.float64)
    scorer = LogisticRegression(l2=scorer_l2).fit(Z, y)
    scores = scorer.predict_proba(Z)

    thresholds = None
    if dataset.task == "classification":
        thresholds = GroupThresholdAdjuster(criterion=criterion).fit(
            scores, dataset.protected, y_true=y
        )

    return ServingArtifact(
        model=model,
        protected_indices=dataset.protected_indices,
        scaler=scaler,
        scorer=scorer,
        thresholds=thresholds,
        feature_names=list(dataset.feature_names),
        metadata={
            "dataset": dataset.name,
            "task": dataset.task,
            "n_records": dataset.n_records,
            "random_state": random_state,
            "criterion": criterion if thresholds is not None else None,
            "ifair_loss": float(model.loss_),
            "pair_mode": pair_mode,
            "n_landmarks": (
                None if model.landmarks_ is None else int(model.landmarks_.size)
            ),
        },
    )
