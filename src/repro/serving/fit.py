"""Fit a complete serving pipeline from a labelled dataset.

This is the offline half of the serving story: take a
:class:`~repro.data.schema.TabularDataset`, learn scaler -> iFair ->
logistic scorer -> per-group thresholds, and package the result as a
:class:`~repro.serving.artifacts.ServingArtifact` ready for
``save_artifact`` / the ``repro fit-save`` CLI verb.

``tune=True`` grid-searches the mixture coefficients before the final
fit: candidates are trained on an internal train split, scored on a
held-out validation split by (AUC, yNN), selected under a
:class:`~repro.core.tuning.TuningCriterion`, and the winner is re-fit
on the full dataset.  The search drops every candidate artifact after
scoring (``keep_artifacts=False``) and runs on ``tune_jobs`` worker
processes — the encoded matrix is broadcast to them once via shared
memory, never pickled per candidate.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.executor import get_shared
from repro.core.model import IFair
from repro.core.tuning import GridSearch, HalvingConfig, TuningCriterion
from repro.data.schema import TabularDataset
from repro.data.splits import stratified_split
from repro.exceptions import ValidationError
from repro.learners.logistic import LogisticRegression
from repro.learners.scaler import StandardScaler
from repro.metrics.classification import roc_auc
from repro.metrics.individual import consistency
from repro.posthoc.thresholds import GroupThresholdAdjuster
from repro.serving.artifacts import ServingArtifact
from repro.telemetry.tracing import get_tracer

#: Mixture grid searched by ``tune=True`` — wide spacing, crossed with
#: the model's prototype count.
TUNE_MIXTURES: Tuple[float, ...] = (0.1, 1.0, 10.0)


def _tune_build(spec: Dict, params: Dict) -> IFair:
    """Worker body: fit one tuning candidate on the train split."""
    shared = get_shared()
    X = shared["X"]
    model_params = dict(spec["model_params"])
    model_params.update(params)
    return IFair(**model_params).fit(
        X[shared["train"]], list(spec["protected_indices"])
    )


def _tune_evaluate(spec: Dict, model: IFair) -> Tuple[float, float]:
    """Validation (AUC, yNN) of one fitted tuning candidate."""
    shared = get_shared()
    X, y = shared["X"], shared["y"]
    train, val = shared["train"], shared["val"]
    Z_train = model.transform(X[train])
    Z_val = model.transform(X[val])
    clf = LogisticRegression(l2=spec["scorer_l2"]).fit(Z_train, y[train])
    proba = clf.predict_proba(Z_val)
    pred = (proba >= 0.5).astype(np.float64)
    try:
        auc = float(roc_auc(y[val], proba))
    except ValidationError:
        auc = float("nan")
    nonprotected = [
        i for i in range(X.shape[1]) if i not in set(spec["protected_indices"])
    ]
    ynn = float(
        consistency(
            X[val][:, nonprotected], pred, k=min(10, val.size - 1)
        )
    )
    return auc, ynn


def _tune_mixtures(
    X: np.ndarray,
    y: np.ndarray,
    protected_indices,
    model_params: Dict,
    *,
    scorer_l2: float,
    tune_criterion: str,
    tune_jobs: Optional[int],
    tune_strategy: str,
    tune_promote: str,
    pool: str,
    random_state: int,
) -> Dict:
    """Select (lambda_util, mu_fair) on a held-out validation split."""
    split = stratified_split(y, random_state=random_state)
    # Budget keys ride in every grid point so the halving strategy can
    # shrink them on early rungs (and warm-start survivors).
    grid: List[Dict] = [
        {
            "lambda_util": lam,
            "mu_fair": mu,
            "max_iter": model_params["max_iter"],
            "n_restarts": model_params["n_restarts"],
        }
        for lam in TUNE_MIXTURES
        for mu in TUNE_MIXTURES
    ]
    spec = {
        "model_params": model_params,
        "protected_indices": tuple(int(i) for i in np.atleast_1d(protected_indices)),
        "scorer_l2": scorer_l2,
    }
    search = GridSearch(
        partial(_tune_build, spec),
        partial(_tune_evaluate, spec),
        grid,
        n_jobs=tune_jobs,
        strategy=tune_strategy,
        halving=HalvingConfig(promote=tune_promote),
        keep_artifacts=False,
        pool=pool,
        shared={
            "X": X,
            "y": y,
            "train": np.concatenate([split.train, split.test]),
            "val": split.val,
        },
    )
    best = search.run().best(TuningCriterion(tune_criterion))
    return {key: best.params[key] for key in ("lambda_util", "mu_fair")}


def fit_serving_pipeline(
    dataset: TabularDataset,
    *,
    n_prototypes: int = 10,
    lambda_util: float = 1.0,
    mu_fair: float = 1.0,
    init: str = "protected_zero",
    n_restarts: int = 1,
    max_iter: int = 100,
    max_pairs: Optional[int] = 2000,
    pair_mode: str = "auto",
    n_landmarks: Optional[int] = None,
    landmark_method: str = "kmeans++",
    oracle_jobs: Optional[int] = None,
    oracle_shards: Optional[int] = None,
    batch_mode: str = "full",
    batch_size: Optional[int] = None,
    criterion: str = "parity",
    scorer_l2: float = 1.0,
    n_jobs: Optional[int] = None,
    backend: str = "process",
    pool: str = "per-call",
    tune: bool = False,
    tune_criterion: str = "optimal",
    tune_jobs: Optional[int] = None,
    tune_strategy: str = "exhaustive",
    tune_promote: str = "rank",
    random_state: int = 0,
) -> ServingArtifact:
    """Fit scaler + iFair + scorer (+ thresholds) on ``dataset``.

    Classification datasets get the full stack; ranking datasets (real-
    valued ``y``) get scaler + iFair + a scorer trained on the median
    split of the scores, but no thresholds (``decide`` is a
    classification verb).  ``pair_mode="landmark"`` switches the
    fairness oracle to the large-M landmark approximation (and drops
    the default pair subsample, which only applies to ``sampled``).
    ``oracle_jobs``/``oracle_shards``/``batch_mode``/``batch_size``
    enable the sharded (and optionally stochastic) landmark oracle —
    see :class:`repro.core.shards.ShardedLandmarkOracle`; they are
    mutually exclusive with ``n_jobs`` restart parallelism.

    ``n_jobs``/``backend`` parallelise the fit's restarts; ``tune``
    grid-searches the mixture coefficients first (see module
    docstring), overriding ``lambda_util``/``mu_fair`` with the
    winner before the final full-data fit.  ``pool="session"`` runs
    both the search and the final fit on the persistent broker pool:
    the refit reuses the already-broadcast matrix through the shm
    arena cache instead of re-publishing it, with the same results as
    ``"per-call"``.  ``tune_promote="extrapolate"`` switches halving
    rung promotion to learning-curve extrapolation.
    """
    if dataset.n_records < 10:
        raise ValidationError("serving pipeline needs at least 10 records")
    if pair_mode in ("full", "landmark"):
        max_pairs = None
    scaler = StandardScaler().fit(dataset.X)
    X = scaler.transform(dataset.X)

    y = dataset.y
    if dataset.task != "classification":
        y = (dataset.y >= np.median(dataset.y)).astype(np.float64)

    model_params = {
        "n_prototypes": n_prototypes,
        "lambda_util": lambda_util,
        "mu_fair": mu_fair,
        "init": init,
        "n_restarts": n_restarts,
        "max_iter": max_iter,
        "max_pairs": max_pairs,
        "pair_mode": pair_mode,
        "n_landmarks": n_landmarks,
        "landmark_method": landmark_method,
        "oracle_jobs": oracle_jobs,
        "oracle_shards": oracle_shards,
        "batch_mode": batch_mode,
        "batch_size": batch_size,
        "n_jobs": n_jobs,
        "backend": backend,
        "pool": pool,
        "random_state": random_state,
    }
    tracer = get_tracer()
    with tracer.span(
        "serving.fit_pipeline", dataset=dataset.name, tune=tune
    ):
        tuned_params: Optional[Dict] = None
        if tune:
            with tracer.span("serving.fit_pipeline.tune"):
                tuned_params = _tune_mixtures(
                    X,
                    y,
                    dataset.protected_indices,
                    model_params,
                    scorer_l2=scorer_l2,
                    tune_criterion=tune_criterion,
                    tune_jobs=tune_jobs,
                    tune_strategy=tune_strategy,
                    tune_promote=tune_promote,
                    pool=pool,
                    random_state=random_state,
                )
            model_params.update(tuned_params)

        model = IFair(**model_params).fit(X, dataset.protected_indices)
        Z = model.transform(X)

        with tracer.span("serving.fit_pipeline.scorer"):
            scorer = LogisticRegression(l2=scorer_l2).fit(Z, y)
            scores = scorer.predict_proba(Z)

            thresholds = None
            if dataset.task == "classification":
                thresholds = GroupThresholdAdjuster(criterion=criterion).fit(
                    scores, dataset.protected, y_true=y
                )

    return ServingArtifact(
        model=model,
        protected_indices=dataset.protected_indices,
        scaler=scaler,
        scorer=scorer,
        thresholds=thresholds,
        feature_names=list(dataset.feature_names),
        metadata={
            "dataset": dataset.name,
            "task": dataset.task,
            "n_records": dataset.n_records,
            "random_state": random_state,
            "criterion": criterion if thresholds is not None else None,
            "ifair_loss": float(model.loss_),
            "pair_mode": pair_mode,
            "n_landmarks": (
                None if model.landmarks_ is None else int(model.landmarks_.size)
            ),
            "tuned": tuned_params,
            "tune_criterion": tune_criterion if tune else None,
        },
    )
