"""Multi-process serving tier: shm-backed engine workers, thin routers.

One :class:`~repro.serving.engine.InferenceEngine` in one process is
GIL-bound: ``ThreadingHTTPServer`` accepts concurrent connections, but
every model pass serialises on the interpreter lock, so adding CPU
cores buys nothing.  :class:`EngineDispatcher` breaks that ceiling with
the same ingredients the fit-time executor uses
(:mod:`repro.core.executor`):

* **N forked worker processes**, each owning a full engine (its own
  micro-batcher, representation cache, metrics registry, and fairness
  monitor), connected to the parent by one duplex pipe each;
* **shared-memory model broadcast** — the artifact's float arrays are
  published once through the content-addressed
  :class:`~repro.utils.shm.ShmArena` and workers attach read-only
  views, so the model is never pickled per worker and N workers map
  the same physical pages;
* **crash-isolated respawn** — a worker that dies mid-request is
  detected by the broken pipe, respawned from the current artifact
  spec, and the request retried once before the caller sees a 503;
* **telemetry deltas** — each response ships the worker's registry
  delta and trace spans back on the pipe (the PR 6 snapshot-delta
  pattern); the parent folds them into one registry under a
  ``worker="<i>"`` label, so ``GET /v1/metrics`` stays in-process and
  still exposes per-worker series.

HTTP handler threads stay thin: ``do_POST`` hands the *raw body bytes*
to :meth:`EngineDispatcher.handle_http`, which picks the least-loaded
worker (round-robin tie-break) and blocks on that worker's pipe; JSON
decode/encode happens inside the worker, off the parent's GIL.  GET
endpoints never cross a pipe.

Blue/green model swap: :meth:`EngineDispatcher.reload` loads a new
artifact directory (checksum-verified by the manifest reader),
publishes its arrays to the arena, then flips workers **one at a
time** under each worker's request lock — capacity never drops to
zero, and holding the lock means the worker's in-flight request on the
old version completes before it flips.  The old arena lease is
released only after every worker acknowledged the new version.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import ReproError, ValidationError
from repro.core.executor import _process_context
from repro.serving.artifacts import (
    ServingArtifact,
    artifact_payload,
    assemble_artifact,
    load_artifact,
)
from repro.serving.engine import InferenceEngine, serving_endpoints
from repro.telemetry.logs import get_logger
from repro.telemetry.metrics import (
    MetricsRegistry,
    get_registry,
    merge_snapshots,
    parse_metric_key,
    prometheus_text,
    relabel_snapshot,
    snapshot_diff,
)
from repro.telemetry.tracing import get_tracer

_DISPATCH_LOG = get_logger("serving.dispatcher")

_JOIN_TIMEOUT_S = 5.0


class DispatchError(ReproError):
    """The dispatcher could not answer (worker loss, stopped tier)."""

    def __init__(self, message: str, status: int = 503):
        super().__init__(message)
        self.status = status


# ----------------------------------------------------------------------
# wire format


@dataclass(frozen=True)
class _ArtifactSpec:
    """Picklable recipe a worker rebuilds its engine from.

    ``handles`` point at arena segments (the heavy float payload);
    ``inline`` carries the zero-size arrays the arena refuses to map
    (e.g. ``protected_indices`` of an all-numeric pipeline).  The
    manifest is the JSON half of :func:`artifact_payload`.
    """

    manifest: Dict
    handles: Dict
    inline: Dict = field(default_factory=dict)
    checksum: Optional[str] = None


def _spec_arrays(spec: _ArtifactSpec, attachments: List) -> Dict[str, np.ndarray]:
    from repro.utils.shm import attach

    arrays: Dict[str, np.ndarray] = dict(spec.inline)
    if spec.handles:
        attached = attach(spec.handles)
        # Keep the mapping alive for the worker's lifetime: the engine
        # holds views into these pages, and (as in the executor) the
        # mappings die with the process rather than being torn down
        # under live views.
        attachments.append(attached)
        arrays.update(attached.arrays)
    return arrays


def _build_engine(
    spec: _ArtifactSpec, engine_kwargs: Dict, attachments: List
) -> InferenceEngine:
    artifact = assemble_artifact(
        spec.manifest, _spec_arrays(spec, attachments), checksum=spec.checksum
    )
    return InferenceEngine(artifact, **engine_kwargs)


# ----------------------------------------------------------------------
# worker process


def _answer(engine: InferenceEngine, path: str, raw: bytes) -> Tuple[int, bytes]:
    """One POST request, JSON in / JSON out, entirely in this worker."""
    from repro.serving.service import RequestError, dispatch

    try:
        payload = json.loads(raw.decode("utf-8")) if raw else {}
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        return 400, json.dumps(
            {"error": f"request body is not valid JSON: {exc}"}
        ).encode("utf-8")
    try:
        body = dispatch(engine, "POST", path, payload)
        status = 200
    except RequestError as exc:
        body, status = {"error": str(exc)}, exc.status
    return status, json.dumps(body).encode("utf-8")


def _serving_worker_main(spec, engine_kwargs, conn) -> None:
    """Engine-worker loop: build from the spec, answer until ``None``.

    Replies are ``(kind, a, b, telemetry)`` tuples where telemetry is
    the executor-style ``(metrics_delta, spans)`` pair (or ``None``)
    accumulated since the previous reply.
    """
    attachments: List = []
    registry = get_registry()
    tracer = get_tracer()
    # Fork inherits the parent's registry contents and tracer buffer —
    # re-baseline so only counts produced by this worker ship back.
    tracer.clear()

    engine: Optional[InferenceEngine] = None
    error: Optional[str] = None
    try:
        engine = _build_engine(spec, engine_kwargs, attachments)
    except BaseException as exc:  # surfaced per-request as a 503
        error = f"worker failed to build engine: {exc}"

    def combined():
        parts = [registry.snapshot()]
        if engine is not None:
            parts.append(engine.registry.snapshot())
        return merge_snapshots(parts)

    shipped = combined()

    def telemetry_delta():
        nonlocal shipped
        current = combined()
        delta = snapshot_diff(current, shipped)
        shipped = current
        spans = tracer.drain() if tracer.enabled else []
        if not delta and not spans:
            return None
        return (delta or None, spans or None)

    try:
        while True:
            message = conn.recv()
            if message is None:
                break
            kind = message[0]
            if kind == "load":
                try:
                    fresh = _build_engine(message[1], engine_kwargs, attachments)
                except BaseException as exc:
                    # Old engine keeps serving; the parent aborts the flip.
                    conn.send(
                        ("load", False, f"reload failed in worker: {exc}",
                         telemetry_delta())
                    )
                    continue
                # Flush the old engine's remaining counters under its
                # labels, then re-baseline on the fresh registry so the
                # next delta never goes backwards.
                final_delta = telemetry_delta()
                engine, error = fresh, None
                shipped = combined()
                conn.send(("load", True, fresh.artifact.checksum, final_delta))
                continue
            path, raw = message[1], message[2]
            if engine is None:
                conn.send(
                    ("http", 503, json.dumps({"error": error}).encode("utf-8"),
                     telemetry_delta())
                )
                continue
            status, body = _answer(engine, path, raw)
            engine.registry.gauge("serving_cache_entries").set(len(engine._cache))
            conn.send(("http", status, body, telemetry_delta()))
    except (EOFError, OSError, KeyboardInterrupt):  # parent went away
        pass
    # Shared segments stay mapped until process exit (see _spec_arrays).


# ----------------------------------------------------------------------
# parent-side dispatcher


class _Worker:
    """One engine worker: process + pipe + request lock + load count."""

    __slots__ = ("index", "process", "conn", "lock", "pending")

    def __init__(self, index, process, conn):
        self.index = index
        self.process = process
        self.conn = conn
        self.lock = threading.Lock()
        self.pending = 0


class EngineDispatcher:
    """Fan requests out to N forked engine workers sharing one model.

    Duck-types the :class:`~repro.serving.engine.InferenceEngine`
    surface that :func:`repro.serving.service.dispatch` touches
    (``artifact``, ``uptime_s``, ``endpoints``, ``stats``,
    ``metrics_text``, plus the transform/score/rank/decide verbs), so
    :class:`~repro.serving.service.DecisionService` and the in-process
    client work unchanged against a multi-process tier.

    Parameters mirror the engine's: ``batch_size`` / ``cache_size`` /
    ``max_batch_delay`` apply *per worker*.
    """

    def __init__(
        self,
        artifact: ServingArtifact,
        *,
        n_workers: int = 2,
        batch_size: int = 256,
        cache_size: int = 4096,
        max_batch_delay: float = 0.0,
        max_retries: int = 1,
    ):
        if int(n_workers) < 1:
            raise ValidationError("n_workers must be a positive integer")
        self.artifact = artifact
        self.n_workers = int(n_workers)
        self.max_retries = int(max_retries)
        self._engine_kwargs = dict(
            batch_size=batch_size,
            cache_size=cache_size,
            max_batch_delay=max_batch_delay,
        )
        self.registry = MetricsRegistry()
        self.started_at = time.time()
        self._ctx = _process_context()
        # Lock order (deadlock-free by construction): _admin_lock ->
        # worker.lock; _pick_lock never nests with either.
        self._admin_lock = threading.Lock()
        self._pick_lock = threading.Lock()
        self._rr = 0
        self._stopped = False
        self._lease = None
        self._spec, self._lease = self._make_spec(artifact)
        self._requests = self.registry.counter("serving_dispatch_requests_total")
        self._respawns = self.registry.counter("serving_worker_respawns_total")
        self._reloads = self.registry.counter("serving_reloads_total")
        self._latency = self.registry.histogram("serving_dispatch_seconds")
        try:
            self._workers = [
                self._spawn(index) for index in range(self.n_workers)
            ]
        except BaseException:
            self.stop()
            raise

    # ------------------------------------------------------------------
    # worker lifecycle

    def _make_spec(self, artifact: ServingArtifact):
        from repro.utils.shm import arena

        manifest, arrays = artifact_payload(artifact)
        shm_arrays = {k: v for k, v in arrays.items() if v.size}
        inline = {k: np.asarray(v) for k, v in arrays.items() if not v.size}
        lease = arena().publish(shm_arrays) if shm_arrays else None
        spec = _ArtifactSpec(
            manifest=manifest,
            handles=dict(lease.handles) if lease is not None else {},
            inline=inline,
            checksum=artifact.checksum,
        )
        return spec, lease

    def _spawn(self, index: int, spec: Optional[_ArtifactSpec] = None) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_serving_worker_main,
            args=(spec or self._spec, dict(self._engine_kwargs), child_conn),
            daemon=True,
            name=f"repro-serving-worker-{index}",
        )
        process.start()
        child_conn.close()  # the worker's end lives in the worker
        return _Worker(index, process, parent_conn)

    def _respawn_locked(
        self, worker: _Worker, spec: Optional[_ArtifactSpec] = None
    ) -> None:
        """Replace a dead worker's process+pipe; caller holds its lock."""
        self._respawns.inc()
        _DISPATCH_LOG.warning(
            "engine worker %d died; respawning", worker.index,
            extra={"worker": worker.index},
        )
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process.join(timeout=_JOIN_TIMEOUT_S)
        if worker.process.is_alive():  # wedged, not dead: force it out
            worker.process.terminate()
            worker.process.join(timeout=_JOIN_TIMEOUT_S)
        replacement = self._spawn(worker.index, spec)
        worker.process, worker.conn = replacement.process, replacement.conn

    # ------------------------------------------------------------------
    # request path

    def _pick(self) -> _Worker:
        with self._pick_lock:
            if self._stopped or not self._workers:
                raise DispatchError("serving dispatcher is stopped")
            n = len(self._workers)
            start = self._rr
            self._rr = (self._rr + 1) % n
            # Least-loaded steal with a rotating tie-break: min() keeps
            # the first of equals, and the rotation makes "first" fair.
            worker = min(
                (self._workers[(start + i) % n] for i in range(n)),
                key=lambda w: w.pending,
            )
            worker.pending += 1
            return worker

    def handle_http(self, path: str, raw: bytes) -> Tuple[int, bytes]:
        """Route one POST body to a worker; returns (status, json bytes).

        The worker does all JSON and model work; this thread only
        blocks on the pipe.  A worker death is answered by one respawn
        + retry before surfacing a 503 :class:`DispatchError`.
        """
        start = time.perf_counter()
        worker = self._pick()
        try:
            for _ in range(self.max_retries + 1):
                with worker.lock:
                    if self._stopped:
                        raise DispatchError("serving dispatcher is stopped")
                    try:
                        worker.conn.send(("http", path, bytes(raw)))
                        _, status, body, telemetry = worker.conn.recv()
                    except (BrokenPipeError, EOFError, OSError):
                        self._respawn_locked(worker)
                        continue
                self._ingest(worker.index, telemetry)
                self._requests.inc()
                self._latency.observe(time.perf_counter() - start)
                return int(status), body
            raise DispatchError(
                f"engine worker {worker.index} died "
                f"{self.max_retries + 1} times answering one request"
            )
        finally:
            with self._pick_lock:
                worker.pending -= 1

    def _ingest(self, index: int, telemetry) -> None:
        """Fold a worker's telemetry delta in under its worker label."""
        if not telemetry:
            return
        delta, spans = telemetry
        if delta:
            self.registry.merge(
                relabel_snapshot(delta, {"worker": str(index)})
            )
        if spans:
            tracer = get_tracer()
            if tracer.enabled:
                tracer.ingest(spans)

    # ------------------------------------------------------------------
    # engine-compatible verbs (used by dispatch() and InProcessClient)

    def _call(self, path: str, payload: Dict) -> Dict:
        status, body = self.handle_http(
            path, json.dumps(payload).encode("utf-8")
        )
        answer = json.loads(body.decode("utf-8"))
        if status >= 400:
            raise DispatchError(
                str(answer.get("error", "request failed")), status=status
            )
        return answer

    @staticmethod
    def _listify(records):
        return records.tolist() if isinstance(records, np.ndarray) else list(records)

    def transform(self, records) -> np.ndarray:
        answer = self._call("/v1/transform", {"records": self._listify(records)})
        return np.asarray(answer["transformed"], dtype=np.float64)

    def score(self, records) -> np.ndarray:
        answer = self._call("/v1/score", {"records": self._listify(records)})
        return np.asarray(answer["scores"], dtype=np.float64)

    def rank(self, records, *, top_k=None, groups=None) -> Dict:
        payload: Dict = {"records": self._listify(records)}
        if top_k is not None:
            payload["top_k"] = top_k
        if groups is not None:
            payload["groups"] = self._listify(np.asarray(groups))
        return self._call("/v1/rank", payload)

    def decide(self, records, groups) -> Dict:
        return self._call(
            "/v1/decide",
            {
                "records": self._listify(records),
                "groups": self._listify(np.asarray(groups)),
            },
        )

    # ------------------------------------------------------------------
    # blue/green reload

    def reload(self, artifact_path: str) -> Dict:
        """Swap every worker onto the artifact at ``artifact_path``.

        Loads + checksum-verifies the artifact, publishes its arrays to
        the arena, then flips workers one at a time — each flip waits
        for that worker's in-flight request under its lock, and the
        other workers keep answering on whichever version they hold, so
        capacity never reaches zero.  On any failure the flipped
        workers are rolled back and the new lease released.  The old
        lease is released only after all workers acknowledged.
        """
        if not isinstance(artifact_path, str) or not artifact_path:
            raise ValidationError("reload requires an 'artifact' directory path")
        with self._admin_lock:
            if self._stopped:
                raise DispatchError("serving dispatcher is stopped")
            artifact = load_artifact(artifact_path)
            spec, lease = self._make_spec(artifact)
            previous = self.artifact.checksum
            flipped: List[_Worker] = []
            try:
                for worker in self._workers:
                    self._flip(worker, spec)
                    flipped.append(worker)
            except BaseException:
                for worker in flipped:
                    try:
                        self._flip(worker, self._spec)
                    except ReproError:  # pragma: no cover - best effort
                        pass
                if lease is not None:
                    lease.release()
                raise
            old_lease = self._lease
            self._spec, self._lease, self.artifact = spec, lease, artifact
            if old_lease is not None:
                old_lease.release()
            self._reloads.inc()
            _DISPATCH_LOG.info(
                "reloaded %d workers onto artifact %s",
                len(self._workers),
                artifact.checksum,
                extra={"checksum": artifact.checksum, "previous": previous},
            )
            return {
                "status": "ok",
                "checksum": artifact.checksum,
                "previous_checksum": previous,
                "workers": len(self._workers),
            }

    def _flip(self, worker: _Worker, spec: _ArtifactSpec) -> None:
        with worker.lock:
            try:
                worker.conn.send(("load", spec))
                _, ok, payload, telemetry = worker.conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                # Dead worker: respawning it directly onto the new spec
                # *is* the flip.
                self._respawn_locked(worker, spec)
                return
        self._ingest(worker.index, telemetry)
        if not ok:
            raise ValidationError(str(payload))

    # ------------------------------------------------------------------
    # engine-compatible introspection (GET endpoints, in-process)

    @property
    def uptime_s(self) -> float:
        return time.time() - self.started_at

    def endpoints(self) -> List[str]:
        return serving_endpoints(self.artifact)

    def _sum_counter(self, snapshot: Dict, name: str) -> float:
        return sum(
            value
            for key, value in snapshot.get("counters", {}).items()
            if parse_metric_key(key)[0] == name
        )

    def stats(self) -> Dict:
        """Traffic/cache counters reduced across workers.

        Sums each worker-labelled series back into the engine's
        unlabelled totals and adds a ``workers`` block (liveness,
        respawns, reloads, per-worker request counts).  Window-local
        fairness state stays per worker and is not merged.
        """
        snapshot = self.registry.snapshot()
        hits = self._sum_counter(snapshot, "serving_cache_hits_total")
        misses = self._sum_counter(snapshot, "serving_cache_misses_total")
        lookups = hits + misses
        per_worker: Dict[str, int] = {}
        for key, value in snapshot.get("counters", {}).items():
            name, labels = parse_metric_key(key)
            if name == "serving_requests_total" and "worker" in labels:
                per_worker[labels["worker"]] = (
                    per_worker.get(labels["worker"], 0) + int(value)
                )
        cache_entries = sum(
            value
            for key, value in snapshot.get("gauges", {}).items()
            if parse_metric_key(key)[0] == "serving_cache_entries"
        )
        with self._pick_lock:
            alive = sum(1 for w in self._workers if w.process.is_alive())
        return {
            "requests": int(self._sum_counter(snapshot, "serving_requests_total")),
            "records": int(self._sum_counter(snapshot, "serving_records_total")),
            "cache_hits": int(hits),
            "cache_misses": int(misses),
            "cache_hit_ratio": (hits / lookups) if lookups else 0.0,
            "cache_entries": int(cache_entries),
            "batch_flushes": int(
                self._sum_counter(snapshot, "serving_batch_flushes_total")
            ),
            "coalesced_requests": int(
                self._sum_counter(snapshot, "serving_coalesced_requests_total")
            ),
            "endpoints": sorted(self.endpoints()),
            "uptime_s": self.uptime_s,
            "workers": {
                "n": self.n_workers,
                "alive": alive,
                "dispatched": int(self._requests.value),
                "respawns": int(self._respawns.value),
                "reloads": int(self._reloads.value),
                "requests": per_worker,
            },
        }

    def metrics_text(self) -> str:
        """Prometheus text: merged worker series + dispatcher + library."""
        self.registry.gauge("serving_uptime_seconds").set(self.uptime_s)
        self.registry.gauge("serving_workers").set(self.n_workers)
        return prometheus_text(
            self.registry.snapshot(), get_registry().snapshot()
        )

    # ------------------------------------------------------------------
    # shutdown

    def stop(self) -> None:
        """Drain and stop every worker; release the arena lease.

        Idempotent.  Waits for each worker's in-flight request (its
        lock) before sending the shutdown sentinel, mirroring the
        executor's pool teardown.
        """
        with self._admin_lock:
            if self._stopped:
                return
            self._stopped = True
            with self._pick_lock:
                workers, self._workers = getattr(self, "_workers", []), []
        for worker in workers:
            with worker.lock:
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError, ValueError):
                    pass
        for worker in workers:
            worker.process.join(timeout=_JOIN_TIMEOUT_S)
            if worker.process.is_alive():  # pragma: no cover - wedged worker
                worker.process.terminate()
                worker.process.join(timeout=_JOIN_TIMEOUT_S)
            try:
                worker.conn.close()
            except OSError:
                pass
        if self._lease is not None:
            self._lease.release()
            self._lease = None
        from repro.utils.shm import arena

        arena().reap()

    def __enter__(self) -> "EngineDispatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
