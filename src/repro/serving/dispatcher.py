"""Multi-process serving tier: shm-backed engine workers, thin routers.

One :class:`~repro.serving.engine.InferenceEngine` in one process is
GIL-bound: ``ThreadingHTTPServer`` accepts concurrent connections, but
every model pass serialises on the interpreter lock, so adding CPU
cores buys nothing.  :class:`EngineDispatcher` breaks that ceiling with
the same ingredients the fit-time executor uses
(:mod:`repro.core.executor`):

* **N forked worker processes**, each owning a full engine (its own
  micro-batcher, representation cache, metrics registry, and fairness
  monitor), connected to the parent by one duplex pipe each;
* **shared-memory model broadcast** — the artifact's float arrays are
  published once through the content-addressed
  :class:`~repro.utils.shm.ShmArena` and workers attach read-only
  views, so the model is never pickled per worker and N workers map
  the same physical pages;
* **telemetry deltas** — each response ships the worker's registry
  delta and trace spans back on the pipe (the PR 6 snapshot-delta
  pattern); the parent folds them into one registry under a
  ``worker="<i>"`` label, so ``GET /v1/metrics`` stays in-process and
  still exposes per-worker series.

HTTP handler threads stay thin: ``do_POST`` hands the *raw body bytes*
to :meth:`EngineDispatcher.handle_http`, which picks the least-loaded
worker (round-robin tie-break) and waits on that worker's pipe; JSON
decode/encode happens inside the worker, off the parent's GIL.  GET
endpoints never cross a pipe.

Resilience (PR 9) — the dispatcher answers *definitively* even when
workers crash, hang, or corrupt their pipe:

* **Per-request deadlines** — the pipe wait is ``poll(timeout)``
  against a per-attempt deadline.  A worker that does not answer in
  time is killed on the spot (it is wedged, not slow — a slow reply
  would have landed inside the deadline) and the request is rerouted
  to a *different* live worker before a definitive 503.
* **Bounded admission** — an optional gate (``max_inflight`` +
  ``shed_queue_s``) sheds excess load with a 429
  :class:`AdmissionError` carrying ``retry_after_s`` instead of
  letting accept threads pile up behind busy pipes.
* **Crash-loop breaker** — a dead slot is *never* respawned inline on
  the request path.  A background probe thread respawns it after a
  jittered exponential backoff, verifies the replacement with a
  ``ping`` round-trip, and only then returns it to rotation.  A slot
  that dies ``breaker_threshold`` times inside ``breaker_window_s``
  is evicted for ``evict_probation_s`` (capacity degrades, ``health``
  reports ``degraded``); the probe re-admits it once a respawn proves
  healthy.  All spawns serialise under the admin lock, so a blue/green
  reload can never race a revival onto a stale artifact spec.
* **Chaos plane** — workers accept a
  :class:`~repro.serving.chaos.ChaosConfig` (or the ``REPRO_CHAOS``
  env spec) and inject crash/hang/slow/corrupt faults at their pipe
  boundary; the stress suite and ``benchmarks/bench_chaos.py`` drive
  it to pin "zero non-shed errors, bitwise-identical answers".

Blue/green model swap: :meth:`EngineDispatcher.reload` loads a new
artifact directory (checksum-verified by the manifest reader),
publishes its arrays to the arena, then flips workers **one at a
time** under each worker's request lock — capacity never drops to
zero, and holding the lock means the worker's in-flight request on the
old version completes before it flips.  The old arena lease is
released only after every worker acknowledged the new version.  Dead
slots are skipped: the probe respawns them from the post-reload spec.
"""

from __future__ import annotations

import json
import pickle
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.exceptions import ReproError, ValidationError
from repro.core.executor import _process_context
from repro.serving.artifacts import (
    ServingArtifact,
    artifact_payload,
    assemble_artifact,
    load_artifact,
)
from repro.serving.chaos import ChaosConfig, ChaosPlane
from repro.serving.engine import InferenceEngine, serving_endpoints
from repro.telemetry.logs import get_logger
from repro.telemetry.metrics import (
    MetricsRegistry,
    get_registry,
    merge_snapshots,
    parse_metric_key,
    prometheus_text,
    relabel_snapshot,
    snapshot_diff,
    sum_counter,
)
from repro.telemetry.tracing import get_tracer

_DISPATCH_LOG = get_logger("serving.dispatcher")

_JOIN_TIMEOUT_S = 5.0
#: Blue/green flips wait this long for a worker's "load" ack before the
#: worker is declared wedged and killed (engine builds are seconds at
#: most; a flip blocked behind a hung request must not stall reloads
#: forever).
_FLIP_TIMEOUT_S = 30.0
#: The probe waits this long for a respawned worker's first ping — it
#: covers the engine build from the shm spec.
_PING_TIMEOUT_S = 30.0


class DispatchError(ReproError):
    """The dispatcher could not answer (worker loss, stopped tier).

    ``retry_after_s`` is the dispatcher's estimate of when retrying
    could succeed (serialised into the error body and the
    ``Retry-After`` header by the HTTP layer); ``worker`` is the slot
    index of the last worker involved, when one was.
    """

    def __init__(
        self,
        message: str,
        status: int = 503,
        retry_after_s: Optional[float] = None,
        worker: Optional[int] = None,
    ):
        super().__init__(message)
        self.status = status
        self.retry_after_s = retry_after_s
        self.worker = worker


class AdmissionError(DispatchError):
    """The admission gate shed this request (tier at capacity)."""

    def __init__(
        self, message: str, retry_after_s: Optional[float] = None
    ):
        super().__init__(message, status=429, retry_after_s=retry_after_s)


# ----------------------------------------------------------------------
# wire format


@dataclass(frozen=True)
class _ArtifactSpec:
    """Picklable recipe a worker rebuilds its engine from.

    ``handles`` point at arena segments (the heavy float payload);
    ``inline`` carries the zero-size arrays the arena refuses to map
    (e.g. ``protected_indices`` of an all-numeric pipeline).  The
    manifest is the JSON half of :func:`artifact_payload`.
    """

    manifest: Dict
    handles: Dict
    inline: Dict = field(default_factory=dict)
    checksum: Optional[str] = None


def _spec_arrays(spec: _ArtifactSpec, attachments: List) -> Dict[str, np.ndarray]:
    from repro.utils.shm import attach

    arrays: Dict[str, np.ndarray] = dict(spec.inline)
    if spec.handles:
        attached = attach(spec.handles)
        # Keep the mapping alive for the worker's lifetime: the engine
        # holds views into these pages, and (as in the executor) the
        # mappings die with the process rather than being torn down
        # under live views.
        attachments.append(attached)
        arrays.update(attached.arrays)
    return arrays


def _build_engine(
    spec: _ArtifactSpec, engine_kwargs: Dict, attachments: List
) -> InferenceEngine:
    artifact = assemble_artifact(
        spec.manifest, _spec_arrays(spec, attachments), checksum=spec.checksum
    )
    return InferenceEngine(artifact, **engine_kwargs)


# ----------------------------------------------------------------------
# worker process


def _answer(engine: InferenceEngine, path: str, raw: bytes) -> Tuple[int, bytes]:
    """One POST request, JSON in / JSON out, entirely in this worker."""
    from repro.serving.service import RequestError, dispatch

    try:
        payload = json.loads(raw.decode("utf-8")) if raw else {}
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        return 400, json.dumps(
            {"error": f"request body is not valid JSON: {exc}"}
        ).encode("utf-8")
    try:
        body = dispatch(engine, "POST", path, payload)
        status = 200
    except RequestError as exc:
        body, status = {"error": str(exc)}, exc.status
    return status, json.dumps(body).encode("utf-8")


def _serving_worker_main(
    spec,
    engine_kwargs,
    conn,
    index: int = 0,
    chaos: Optional[ChaosConfig] = None,
    generation: int = 0,
) -> None:
    """Engine-worker loop: build from the spec, answer until ``None``.

    Replies are ``(kind, a, b, telemetry)`` tuples where telemetry is
    the executor-style ``(metrics_delta, spans)`` pair (or ``None``)
    accumulated since the previous reply.  ``("ping",)`` messages are
    the probe's liveness/readiness check.  When ``chaos`` is enabled,
    a :class:`~repro.serving.chaos.ChaosPlane` may crash/hang/slow/
    corrupt data-plane replies — admin messages are never faulted.
    """
    attachments: List = []
    registry = get_registry()
    tracer = get_tracer()
    # Fork inherits the parent's registry contents and tracer buffer —
    # re-baseline so only counts produced by this worker ship back.
    tracer.clear()

    plane: Optional[ChaosPlane] = None
    if chaos is not None and chaos.enabled:
        plane = ChaosPlane(chaos, worker_index=index, generation=generation)

    engine: Optional[InferenceEngine] = None
    error: Optional[str] = None
    try:
        engine = _build_engine(spec, engine_kwargs, attachments)
    except BaseException as exc:  # surfaced per-request as a 503
        error = f"worker failed to build engine: {exc}"

    def combined():
        parts = [registry.snapshot()]
        if engine is not None:
            parts.append(engine.registry.snapshot())
        return merge_snapshots(parts)

    shipped = combined()

    def telemetry_delta():
        nonlocal shipped
        current = combined()
        delta = snapshot_diff(current, shipped)
        shipped = current
        spans = tracer.drain() if tracer.enabled else []
        if not delta and not spans:
            return None
        return (delta or None, spans or None)

    try:
        while True:
            message = conn.recv()
            if message is None:
                break
            kind = message[0]
            if kind == "ping":
                conn.send(("ping", True, None, telemetry_delta()))
                continue
            if kind == "load":
                try:
                    fresh = _build_engine(message[1], engine_kwargs, attachments)
                except BaseException as exc:
                    # Old engine keeps serving; the parent aborts the flip.
                    conn.send(
                        ("load", False, f"reload failed in worker: {exc}",
                         telemetry_delta())
                    )
                    continue
                # Flush the old engine's remaining counters under its
                # labels, then re-baseline on the fresh registry so the
                # next delta never goes backwards.
                final_delta = telemetry_delta()
                engine, error = fresh, None
                shipped = combined()
                conn.send(("load", True, fresh.artifact.checksum, final_delta))
                continue
            path, raw = message[1], message[2]
            if plane is not None and plane.inject(conn):
                continue  # fault consumed the request (corrupt frame sent)
            if engine is None:
                conn.send(
                    ("http", 503,
                     json.dumps(
                         {"error": error, "retry_after_s": 1.0, "worker": index}
                     ).encode("utf-8"),
                     telemetry_delta())
                )
                continue
            status, body = _answer(engine, path, raw)
            engine.registry.gauge("serving_cache_entries").set(len(engine._cache))
            conn.send(("http", status, body, telemetry_delta()))
    except (EOFError, OSError, KeyboardInterrupt):  # parent went away
        pass
    # Shared segments stay mapped until process exit (see _spec_arrays).


# ----------------------------------------------------------------------
# parent-side dispatcher


class _Worker:
    """One engine worker slot: process + pipe + breaker state.

    ``alive`` is the slot's rotation flag (a slot can hold a running
    process and still be out of rotation while the probe verifies it);
    ``deaths`` are monotonic timestamps inside the breaker window;
    ``not_before`` is the earliest monotonic time the probe may try a
    respawn; ``evicted`` marks a slot the breaker took out of service.
    """

    __slots__ = (
        "index", "process", "conn", "lock", "pending",
        "alive", "deaths", "backoff_s", "not_before", "evicted",
    )

    def __init__(self, index, process, conn, backoff_s: float = 0.05):
        self.index = index
        self.process = process
        self.conn = conn
        self.lock = threading.Lock()
        self.pending = 0
        self.alive = True
        self.deaths: List[float] = []
        self.backoff_s = backoff_s
        self.not_before = 0.0
        self.evicted = False


class EngineDispatcher:
    """Fan requests out to N forked engine workers sharing one model.

    Duck-types the :class:`~repro.serving.engine.InferenceEngine`
    surface that :func:`repro.serving.service.dispatch` touches
    (``artifact``, ``uptime_s``, ``endpoints``, ``stats``,
    ``metrics_text``, ``health``, plus the transform/score/rank/decide
    verbs), so :class:`~repro.serving.service.DecisionService` and the
    in-process client work unchanged against a multi-process tier.

    Parameters mirror the engine's: ``batch_size`` / ``cache_size`` /
    ``max_batch_delay`` apply *per worker*.  Resilience knobs:

    ``deadline_s``
        per-attempt reply deadline (None = wait forever, the pre-PR 9
        behaviour).  A request may be retried on other workers, so the
        definitive worst case is ``deadline_s * (max_retries + 1)``
        plus admission wait — the "deadline + grace" envelope.
    ``max_inflight`` / ``shed_queue_s``
        admission gate: at most ``max_inflight`` requests past the
        gate; a request that cannot enter within ``shed_queue_s`` is
        shed with a 429 :class:`AdmissionError` (None = unbounded).
    ``max_retries``
        how many *additional* workers a failed attempt may be rerouted
        to before a definitive 503.
    ``breaker_threshold`` / ``breaker_window_s`` / ``backoff_base_s``
        / ``backoff_max_s`` / ``evict_probation_s`` / ``probe_interval_s``
        crash-loop breaker shape (see module docstring).
    ``chaos``
        optional :class:`~repro.serving.chaos.ChaosConfig` injected
        into every worker; defaults to the ``REPRO_CHAOS`` env spec.
    """

    def __init__(
        self,
        artifact: ServingArtifact,
        *,
        n_workers: int = 2,
        batch_size: int = 256,
        cache_size: int = 4096,
        max_batch_delay: float = 0.0,
        max_retries: int = 2,
        deadline_s: Optional[float] = None,
        max_inflight: Optional[int] = None,
        shed_queue_s: float = 0.1,
        breaker_threshold: int = 5,
        breaker_window_s: float = 30.0,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        evict_probation_s: float = 2.0,
        probe_interval_s: float = 0.05,
        chaos: Optional[ChaosConfig] = None,
    ):
        if int(n_workers) < 1:
            raise ValidationError("n_workers must be a positive integer")
        if deadline_s is not None and not float(deadline_s) > 0:
            raise ValidationError("deadline_s must be positive (or None)")
        if max_inflight is not None and int(max_inflight) < 1:
            raise ValidationError("max_inflight must be >= 1 (or None)")
        if float(shed_queue_s) < 0:
            raise ValidationError("shed_queue_s must be non-negative")
        if int(max_retries) < 0:
            raise ValidationError("max_retries must be non-negative")
        if int(breaker_threshold) < 1:
            raise ValidationError("breaker_threshold must be >= 1")
        if not float(backoff_base_s) > 0 or float(backoff_max_s) < float(backoff_base_s):
            raise ValidationError(
                "backoff_base_s must be positive and <= backoff_max_s"
            )
        if not float(probe_interval_s) > 0:
            raise ValidationError("probe_interval_s must be positive")
        self.artifact = artifact
        self.n_workers = int(n_workers)
        self.max_retries = int(max_retries)
        self.max_inflight = None if max_inflight is None else int(max_inflight)
        self.shed_queue_s = float(shed_queue_s)
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_window_s = float(breaker_window_s)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_max_s = float(backoff_max_s)
        self.evict_probation_s = float(evict_probation_s)
        self.probe_interval_s = float(probe_interval_s)
        self._deadline_s = None if deadline_s is None else float(deadline_s)
        self._chaos = chaos if chaos is not None else ChaosConfig.from_env()
        self._engine_kwargs = dict(
            batch_size=batch_size,
            cache_size=cache_size,
            max_batch_delay=max_batch_delay,
        )
        self.registry = MetricsRegistry()
        # Attached by serve_artifact(online_refit=True); the HTTP layer
        # taps data-plane traffic into it and routes /v1/admin/online.
        self.online_controller = None
        self.started_at = time.time()
        self._ctx = _process_context()
        # Lock order (deadlock-free by construction): _admin_lock ->
        # worker.lock; _pick_lock and the admission condition never
        # nest with either.  Every process (re)spawn happens under
        # _admin_lock, so reloads and probe revivals serialise.
        self._admin_lock = threading.Lock()
        self._pick_lock = threading.Lock()
        self._admit_cond = threading.Condition()
        self._inflight = 0
        self._rr = 0
        self._stopped = False
        self._closing = threading.Event()
        self._probe_thread: Optional[threading.Thread] = None
        self._generations: Dict[int, int] = {}
        self._lease = None
        self._spec, self._lease = self._make_spec(artifact)
        self._requests = self.registry.counter("serving_dispatch_requests_total")
        self._respawns = self.registry.counter("serving_worker_respawns_total")
        self._reloads = self.registry.counter("serving_reloads_total")
        self._retries = self.registry.counter("serving_request_retries_total")
        self._deadline_kills = self.registry.counter("serving_deadline_kills_total")
        self._shed = self.registry.counter("serving_shed_total")
        self._evictions = self.registry.counter("serving_worker_evictions_total")
        self._readmissions = self.registry.counter(
            "serving_worker_readmissions_total"
        )
        self._corrupt = self.registry.counter("serving_corrupt_frames_total")
        self._latency = self.registry.histogram("serving_dispatch_seconds")
        self._admission_wait = self.registry.histogram(
            "serving_admission_wait_seconds"
        )
        self._inflight_gauge = self.registry.gauge("serving_inflight")
        self._alive_gauge = self.registry.gauge("serving_workers_alive")
        try:
            self._workers = [
                self._spawn(index) for index in range(self.n_workers)
            ]
        except BaseException:
            self.stop()
            raise
        self._alive_gauge.set(self.n_workers)
        self._probe_thread = threading.Thread(
            target=self._probe_loop, name="repro-serving-probe", daemon=True
        )
        self._probe_thread.start()

    # ------------------------------------------------------------------
    # worker lifecycle

    def _make_spec(self, artifact: ServingArtifact):
        from repro.utils.shm import arena

        manifest, arrays = artifact_payload(artifact)
        shm_arrays = {k: v for k, v in arrays.items() if v.size}
        inline = {k: np.asarray(v) for k, v in arrays.items() if not v.size}
        lease = arena().publish(shm_arrays) if shm_arrays else None
        spec = _ArtifactSpec(
            manifest=manifest,
            handles=dict(lease.handles) if lease is not None else {},
            inline=inline,
            checksum=artifact.checksum,
        )
        return spec, lease

    def _spawn(self, index: int, spec: Optional[_ArtifactSpec] = None) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        # Per-slot spawn counter -> the chaos plane's generation: a
        # seeded replacement must not replay its predecessor's faults.
        generation = self._generations.get(index, 0)
        self._generations[index] = generation + 1
        process = self._ctx.Process(
            target=_serving_worker_main,
            args=(
                spec or self._spec,
                dict(self._engine_kwargs),
                child_conn,
                index,
                self._chaos,
                generation,
            ),
            daemon=True,
            name=f"repro-serving-worker-{index}",
        )
        process.start()
        child_conn.close()  # the worker's end lives in the worker
        return _Worker(index, process, parent_conn, backoff_s=self.backoff_base_s)

    def _kill_locked(self, worker: _Worker) -> None:
        """SIGKILL a wedged worker process; caller holds its lock."""
        try:
            if worker.process.is_alive():
                worker.process.kill()
        except (OSError, AttributeError):  # pragma: no cover - racing exit
            pass

    def _on_death_locked(self, worker: _Worker, reason: str) -> None:
        """Take a dead slot out of rotation; caller holds its lock.

        Records the death in the breaker window, schedules the probe's
        next respawn attempt (jittered exponential backoff), and evicts
        the slot when it has died ``breaker_threshold`` times inside
        ``breaker_window_s``.  Never spawns anything — that is the
        probe's job.
        """
        worker.alive = False
        try:
            worker.conn.close()
        except OSError:
            pass
        now = time.monotonic()
        horizon = now - self.breaker_window_s
        worker.deaths = [t for t in worker.deaths if t >= horizon]
        worker.deaths.append(now)
        if len(worker.deaths) >= self.breaker_threshold and not worker.evicted:
            worker.evicted = True
            worker.not_before = now + self.evict_probation_s
            self._evictions.inc()
            _DISPATCH_LOG.error(
                "engine worker %d died %d times in %.0fs (%s); evicted for %.1fs",
                worker.index, len(worker.deaths), self.breaker_window_s,
                reason, self.evict_probation_s,
                extra={"worker": worker.index, "reason": reason},
            )
        else:
            delay = worker.backoff_s * (0.5 + random.random())
            worker.not_before = now + delay
            worker.backoff_s = min(self.backoff_max_s, worker.backoff_s * 2.0)
            _DISPATCH_LOG.warning(
                "engine worker %d died (%s); probe respawn in %.0f ms",
                worker.index, reason, delay * 1000.0,
                extra={"worker": worker.index, "reason": reason},
            )
        self._alive_gauge.set(sum(1 for w in self._workers if w.alive))

    # ------------------------------------------------------------------
    # background probe: the only place workers are ever (re)spawned

    def _probe_loop(self) -> None:
        while not self._closing.wait(self.probe_interval_s):
            for worker in list(self._workers):
                if self._closing.is_set() or self._stopped:
                    return
                if worker.alive or time.monotonic() < worker.not_before:
                    continue
                try:
                    self._try_revive(worker)
                except BaseException:  # pragma: no cover - defensive
                    _DISPATCH_LOG.error(
                        "probe failed reviving worker %d", worker.index,
                        extra={"worker": worker.index},
                    )
                    worker.not_before = time.monotonic() + worker.backoff_s

    def _try_revive(self, worker: _Worker) -> None:
        """Respawn one dead slot and verify it before re-admission.

        Runs under ``_admin_lock`` so a blue/green reload can never
        interleave: by the time this spawns, ``self._spec`` is either
        fully pre-reload or fully post-reload.
        """
        with self._admin_lock:
            if self._stopped:
                return
            with worker.lock:
                if worker.alive or self._stopped:
                    return
                worker.process.join(timeout=0.0)
                if worker.process.is_alive():  # deadline-killed but unreaped
                    self._kill_locked(worker)
                    worker.process.join(timeout=_JOIN_TIMEOUT_S)
                try:
                    replacement = self._spawn(worker.index)
                except BaseException:
                    worker.not_before = time.monotonic() + worker.backoff_s
                    raise
                worker.process, worker.conn = replacement.process, replacement.conn
                self._respawns.inc()
                if not self._ping_locked(worker):
                    self._kill_locked(worker)
                    self._on_death_locked(worker, "probe-ping")
                    return
                horizon = time.monotonic() - self.breaker_window_s
                worker.deaths = [t for t in worker.deaths if t >= horizon]
                if worker.evicted:
                    worker.evicted = False
                    worker.deaths = []
                    self._readmissions.inc()
                    _DISPATCH_LOG.info(
                        "engine worker %d re-admitted after probation",
                        worker.index, extra={"worker": worker.index},
                    )
                # A verified ping resets the backoff: exponential delay
                # guards *startup* crash loops (ping keeps failing),
                # while serving-time crash loops are the breaker's job
                # (death count -> eviction + probation).  Keeping the
                # doubled delay here would slow every recovery from a
                # recoverable fault to the backoff ceiling.
                worker.backoff_s = self.backoff_base_s
                worker.alive = True
            self._alive_gauge.set(sum(1 for w in self._workers if w.alive))

    def _ping_locked(self, worker: _Worker) -> bool:
        """One ping round-trip; True iff the worker is answering."""
        try:
            worker.conn.send(("ping",))
            deadline = time.monotonic() + _PING_TIMEOUT_S
            while not self._closing.is_set():
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                if worker.conn.poll(min(0.1, remaining)):
                    reply = worker.conn.recv()
                    self._ingest(
                        worker.index, reply[3] if len(reply) > 3 else None
                    )
                    return reply[0] == "ping"
        except (BrokenPipeError, EOFError, OSError, IndexError, TypeError):
            pass
        return False

    # ------------------------------------------------------------------
    # admission gate

    def _shed_retry_after(self) -> float:
        return round(max(0.05, 2.0 * self.shed_queue_s), 3)

    def _admit(self) -> None:
        """Enter the in-flight window or shed with a 429."""
        if self.max_inflight is None:
            return
        entered = time.monotonic()
        give_up = entered + self.shed_queue_s
        with self._admit_cond:
            while self._inflight >= self.max_inflight:
                remaining = give_up - time.monotonic()
                if remaining <= 0 or self._stopped:
                    self._shed.inc()
                    raise AdmissionError(
                        f"serving tier at capacity "
                        f"({self.max_inflight} requests in flight); "
                        f"shed after {self.shed_queue_s:.3f}s queue wait",
                        retry_after_s=self._shed_retry_after(),
                    )
                self._admit_cond.wait(remaining)
            self._inflight += 1
            self._inflight_gauge.set(self._inflight)
        self._admission_wait.observe(time.monotonic() - entered)

    def _release(self) -> None:
        if self.max_inflight is None:
            return
        with self._admit_cond:
            self._inflight -= 1
            self._inflight_gauge.set(self._inflight)
            self._admit_cond.notify()

    # ------------------------------------------------------------------
    # request path

    def _revival_eta(self) -> float:
        """Seconds until the probe may next revive a dead slot."""
        now = time.monotonic()
        etas = [
            max(0.0, w.not_before - now)
            for w in self._workers
            if not w.alive
        ]
        if not etas:
            return 1.0
        return round(max(0.05, min(etas) + self.probe_interval_s), 3)

    def _pick(self, tried: Set[int] = frozenset()) -> _Worker:
        """Choose a live worker, preferring slots this request has not
        tried yet; falls back to any live slot (a respawned worker may
        legitimately answer a retry)."""
        with self._pick_lock:
            if self._stopped or not self._workers:
                raise DispatchError("serving dispatcher is stopped")
            live = [w for w in self._workers if w.alive]
            if not live:
                # Fast definitive 503: no deadline burn when the whole
                # tier is down (breaker open on every slot).
                raise DispatchError(
                    "no live engine workers (crash-loop breaker open)",
                    retry_after_s=self._revival_eta(),
                )
            pool = [w for w in live if w.index not in tried] or live
            n = len(pool)
            start = self._rr
            self._rr += 1
            # Least-loaded steal with a rotating tie-break: min() keeps
            # the first of equals, and the rotation makes "first" fair.
            worker = min(
                (pool[(start + i) % n] for i in range(n)),
                key=lambda w: w.pending,
            )
            worker.pending += 1
            return worker

    def _pick_with_wait(self, tried: Set[int], wait_until: float) -> _Worker:
        """:meth:`_pick`, waiting out a *transient* all-dead window.

        Two workers can die within one probe interval (say, a crash
        and a corrupt frame back to back); the probe revives them in
        backoff + probe_interval, typically tens of milliseconds.
        Failing requests during that blip would turn a survivable
        fault burst into user-visible 503s, so wait in short slices
        for a revival, bounded by ``wait_until`` — but only while at
        least one slot is still admissible.  A fully *evicted* pool is
        the crash-loop breaker speaking, and that 503 must stay fast.
        """
        while True:
            try:
                return self._pick(tried)
            except DispatchError as exc:
                if self._stopped or exc.status != 503:
                    raise
                with self._pick_lock:
                    revivable = any(not w.evicted for w in self._workers)
                if not revivable or time.monotonic() >= wait_until:
                    raise
            time.sleep(min(0.01, self.probe_interval_s))

    def handle_http(self, path: str, raw: bytes) -> Tuple[int, bytes]:
        """Route one POST body to a worker; returns (status, json bytes).

        The worker does all JSON and model work; this thread only
        waits on the pipe, bounded by ``deadline_s`` per attempt.  A
        worker fault (crash, hang past the deadline, corrupt frame)
        reroutes the request to a *different* live worker up to
        ``max_retries`` times before a definitive 503
        :class:`DispatchError`; the dead slot rejoins rotation later
        via the probe.  Over capacity, the admission gate sheds with a
        429 :class:`AdmissionError` before any worker is touched.
        """
        if self._stopped:
            raise DispatchError("serving dispatcher is stopped")
        start = time.perf_counter()
        self._admit()
        try:
            tried: Set[int] = set()
            attempts = self.max_retries + 1
            fault = "unattempted"
            worker: Optional[_Worker] = None
            # One revival-wait budget for the whole request, sized to
            # the retry envelope (deadline x attempts): a burst that
            # downs every slot stalls picks until the probe revives
            # one — respawn + ping can span a few hundred ms under
            # load — but never past the envelope.
            revival_until = time.monotonic() + (self._deadline_s or 1.0) * attempts
            for attempt in range(attempts):
                worker = self._pick_with_wait(tried, revival_until)
                tried.add(worker.index)
                attempt_deadline = (
                    None
                    if self._deadline_s is None
                    else time.monotonic() + self._deadline_s
                )
                try:
                    outcome = self._attempt(worker, path, raw, attempt_deadline)
                finally:
                    with self._pick_lock:
                        worker.pending -= 1
                if outcome[0] == "ok":
                    _, status, body, telemetry = outcome
                    self._ingest(worker.index, telemetry)
                    self._requests.inc()
                    self._latency.observe(time.perf_counter() - start)
                    return int(status), body
                fault = outcome[1]
                if attempt < attempts - 1:
                    self._retries.inc()
                    _DISPATCH_LOG.warning(
                        "request attempt %d on worker %d failed (%s); rerouting",
                        attempt + 1, worker.index, fault,
                        extra={"worker": worker.index, "fault": fault},
                    )
            raise DispatchError(
                f"request failed on {attempts} worker attempt(s) "
                f"(last fault: {fault})",
                retry_after_s=self._revival_eta(),
                worker=None if worker is None else worker.index,
            )
        finally:
            self._release()

    def _attempt(
        self,
        worker: _Worker,
        path: str,
        raw: bytes,
        attempt_deadline: Optional[float],
    ):
        """One send/receive on one worker.

        Returns ``("ok", status, body, telemetry)`` or
        ``("fault", kind)`` after taking the slot out of rotation; the
        caller decides whether to reroute.
        """
        with worker.lock:
            if self._stopped:
                raise DispatchError("serving dispatcher is stopped")
            if not worker.alive:
                return ("fault", "dead")  # lost the slot while queued on it
            try:
                worker.conn.send(("http", path, bytes(raw)))
            except (BrokenPipeError, OSError, ValueError):
                self._on_death_locked(worker, "send")
                return ("fault", "crash")
            try:
                if attempt_deadline is not None:
                    remaining = attempt_deadline - time.monotonic()
                    if not worker.conn.poll(max(0.0, remaining)):
                        # Hung past the deadline: a merely slow worker
                        # would have answered by now.  Kill it — the
                        # probe respawns the slot with backoff.
                        self._deadline_kills.inc()
                        _DISPATCH_LOG.warning(
                            "engine worker %d missed the %.3fs deadline; killing",
                            worker.index, self._deadline_s,
                            extra={"worker": worker.index},
                        )
                        self._kill_locked(worker)
                        self._on_death_locked(worker, "deadline")
                        return ("fault", "deadline")
                reply = worker.conn.recv()
                kind, status, body, telemetry = reply
                if kind != "http":
                    raise ValueError(f"unexpected worker frame kind {kind!r}")
            except (BrokenPipeError, EOFError, OSError):
                self._on_death_locked(worker, "crash")
                return ("fault", "crash")
            except (ValueError, TypeError, IndexError, pickle.UnpicklingError):
                # The pipe stream can no longer be trusted after a
                # malformed frame — kill the worker and reroute.
                self._corrupt.inc()
                self._kill_locked(worker)
                self._on_death_locked(worker, "corrupt-frame")
                return ("fault", "corrupt-frame")
        return ("ok", status, body, telemetry)

    def _ingest(self, index: int, telemetry) -> None:
        """Fold a worker's telemetry delta in under its worker label."""
        if not telemetry:
            return
        delta, spans = telemetry
        if delta:
            self.registry.merge(
                relabel_snapshot(delta, {"worker": str(index)})
            )
        if spans:
            tracer = get_tracer()
            if tracer.enabled:
                tracer.ingest(spans)

    # ------------------------------------------------------------------
    # engine-compatible verbs (used by dispatch() and InProcessClient)

    def _call(self, path: str, payload: Dict) -> Dict:
        status, body = self.handle_http(
            path, json.dumps(payload).encode("utf-8")
        )
        answer = json.loads(body.decode("utf-8"))
        if status >= 400:
            raise DispatchError(
                str(answer.get("error", "request failed")),
                status=status,
                retry_after_s=answer.get("retry_after_s"),
                worker=answer.get("worker"),
            )
        return answer

    @staticmethod
    def _listify(records):
        return records.tolist() if isinstance(records, np.ndarray) else list(records)

    def transform(self, records) -> np.ndarray:
        answer = self._call("/v1/transform", {"records": self._listify(records)})
        return np.asarray(answer["transformed"], dtype=np.float64)

    def score(self, records) -> np.ndarray:
        answer = self._call("/v1/score", {"records": self._listify(records)})
        return np.asarray(answer["scores"], dtype=np.float64)

    def rank(self, records, *, top_k=None, groups=None) -> Dict:
        payload: Dict = {"records": self._listify(records)}
        if top_k is not None:
            payload["top_k"] = top_k
        if groups is not None:
            payload["groups"] = self._listify(np.asarray(groups))
        return self._call("/v1/rank", payload)

    def decide(self, records, groups) -> Dict:
        return self._call(
            "/v1/decide",
            {
                "records": self._listify(records),
                "groups": self._listify(np.asarray(groups)),
            },
        )

    # ------------------------------------------------------------------
    # blue/green reload

    def reload(self, artifact_path: str) -> Dict:
        """Swap every worker onto the artifact at ``artifact_path``.

        Loads + checksum-verifies the artifact, publishes its arrays to
        the arena, then flips workers one at a time — each flip waits
        for that worker's in-flight request under its lock, and the
        other workers keep answering on whichever version they hold, so
        capacity never reaches zero.  Dead slots are skipped: the probe
        (which shares ``_admin_lock`` with this method) respawns them
        from the post-reload spec.  On any failure the flipped workers
        are rolled back and the new lease released.  The old lease is
        released only after all workers acknowledged.
        """
        if not isinstance(artifact_path, str) or not artifact_path:
            raise ValidationError("reload requires an 'artifact' directory path")
        with self._admin_lock:
            if self._stopped:
                raise DispatchError("serving dispatcher is stopped")
            artifact = load_artifact(artifact_path)
            spec, lease = self._make_spec(artifact)
            previous = self.artifact.checksum
            flipped: List[_Worker] = []
            try:
                for worker in self._workers:
                    self._flip(worker, spec)
                    flipped.append(worker)
            except BaseException:
                for worker in flipped:
                    try:
                        self._flip(worker, self._spec)
                    except ReproError:  # pragma: no cover - best effort
                        pass
                if lease is not None:
                    lease.release()
                raise
            old_lease = self._lease
            self._spec, self._lease, self.artifact = spec, lease, artifact
            if old_lease is not None:
                old_lease.release()
            self._reloads.inc()
            _DISPATCH_LOG.info(
                "reloaded %d workers onto artifact %s",
                len(flipped),
                artifact.checksum,
                extra={"checksum": artifact.checksum, "previous": previous},
            )
            return {
                "status": "ok",
                "checksum": artifact.checksum,
                "previous_checksum": previous,
                "workers": len(flipped),
            }

    def _flip(self, worker: _Worker, spec: _ArtifactSpec) -> None:
        with worker.lock:
            if not worker.alive:
                return  # probe respawns this slot from the updated spec
            try:
                worker.conn.send(("load", spec))
                if not worker.conn.poll(_FLIP_TIMEOUT_S):
                    self._kill_locked(worker)
                    self._on_death_locked(worker, "flip-timeout")
                    return
                _, ok, payload, telemetry = worker.conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                self._on_death_locked(worker, "flip")
                return
            except (ValueError, TypeError, IndexError, pickle.UnpicklingError):
                self._corrupt.inc()
                self._kill_locked(worker)
                self._on_death_locked(worker, "corrupt-frame")
                return
        self._ingest(worker.index, telemetry)
        if not ok:
            raise ValidationError(str(payload))

    # ------------------------------------------------------------------
    # engine-compatible introspection (GET endpoints, in-process)

    @property
    def uptime_s(self) -> float:
        return time.time() - self.started_at

    def endpoints(self) -> List[str]:
        return serving_endpoints(self.artifact)

    def health(self) -> Dict:
        """Slot-level liveness for ``GET /v1/health``.

        ``ok`` — every slot in rotation; ``degraded`` — some slots
        down/evicted but capacity remains; ``unavailable`` — no slot
        can answer (callers see fast 503s until the probe revives one).
        """
        with self._pick_lock:
            workers = list(self._workers)
        alive = sum(1 for w in workers if w.alive)
        evicted = sorted(w.index for w in workers if w.evicted)
        if workers and alive == len(workers):
            status = "ok"
        elif alive > 0:
            status = "degraded"
        else:
            status = "unavailable"
        return {
            "status": status,
            "workers": len(workers) or self.n_workers,
            "workers_alive": alive,
            "workers_evicted": evicted,
            "deadline_s": self._deadline_s,
            "max_inflight": self.max_inflight,
        }

    def drift_flags(self) -> Dict:
        """Fairness drift verdict reduced across worker processes.

        Each worker's engine publishes its monitor's ``fairness_drift``
        gauge (1.0 when any drift flag is up); the dispatcher sees them
        relabelled per worker in its merged registry.  ``any`` is true
        when at least one live window flags — the per-dimension detail
        stays worker-local, which is all the online controller needs.
        """
        snapshot = self.registry.snapshot()
        flagged = any(
            float(value) >= 1.0
            for key, value in snapshot.get("gauges", {}).items()
            if parse_metric_key(key)[0] == "fairness_drift"
        )
        return {"any": flagged}

    def stats(self) -> Dict:
        """Traffic/cache counters reduced across workers.

        Sums each worker-labelled series back into the engine's
        unlabelled totals and adds a ``workers`` block (liveness,
        respawns, reloads, per-worker request counts) plus a
        ``resilience`` block (deadline kills, shed, breaker state).
        Window-local fairness state stays per worker and is not merged.
        """
        snapshot = self.registry.snapshot()
        hits = sum_counter(snapshot, "serving_cache_hits_total")
        misses = sum_counter(snapshot, "serving_cache_misses_total")
        lookups = hits + misses
        per_worker: Dict[str, int] = {}
        for key, value in snapshot.get("counters", {}).items():
            name, labels = parse_metric_key(key)
            if name == "serving_requests_total" and "worker" in labels:
                per_worker[labels["worker"]] = (
                    per_worker.get(labels["worker"], 0) + int(value)
                )
        cache_entries = sum(
            value
            for key, value in snapshot.get("gauges", {}).items()
            if parse_metric_key(key)[0] == "serving_cache_entries"
        )
        with self._pick_lock:
            workers = list(self._workers)
        alive = sum(1 for w in workers if w.alive)
        evicted = sorted(w.index for w in workers if w.evicted)
        with self._admit_cond:
            inflight = self._inflight
        return {
            "requests": int(sum_counter(snapshot, "serving_requests_total")),
            "records": int(sum_counter(snapshot, "serving_records_total")),
            "cache_hits": int(hits),
            "cache_misses": int(misses),
            "cache_hit_ratio": (hits / lookups) if lookups else 0.0,
            "cache_entries": int(cache_entries),
            "batch_flushes": int(
                sum_counter(snapshot, "serving_batch_flushes_total")
            ),
            "coalesced_requests": int(
                sum_counter(snapshot, "serving_coalesced_requests_total")
            ),
            "endpoints": sorted(self.endpoints()),
            "uptime_s": self.uptime_s,
            "workers": {
                "n": self.n_workers,
                "alive": alive,
                "dispatched": int(self._requests.value),
                "respawns": int(self._respawns.value),
                "reloads": int(self._reloads.value),
                "requests": per_worker,
            },
            "resilience": {
                "deadline_s": self._deadline_s,
                "max_inflight": self.max_inflight,
                "inflight": inflight,
                "deadline_kills": int(self._deadline_kills.value),
                "shed": int(self._shed.value),
                "retries": int(self._retries.value),
                "corrupt_frames": int(self._corrupt.value),
                "evictions": int(self._evictions.value),
                "readmissions": int(self._readmissions.value),
                "evicted": evicted,
            },
        }

    def metrics_text(self) -> str:
        """Prometheus text: merged worker series + dispatcher + library."""
        self.registry.gauge("serving_uptime_seconds").set(self.uptime_s)
        self.registry.gauge("serving_workers").set(self.n_workers)
        return prometheus_text(
            self.registry.snapshot(), get_registry().snapshot()
        )

    # ------------------------------------------------------------------
    # shutdown

    def stop(self) -> None:
        """Drain and stop every worker; release the arena lease.

        Idempotent.  Stops the probe thread first (``_closing`` aborts
        any in-flight revival quickly), then waits for each worker's
        in-flight request (its lock) before sending the shutdown
        sentinel, mirroring the executor's pool teardown.
        """
        self._closing.set()
        with self._admin_lock:
            already = self._stopped
            self._stopped = True
            with self._pick_lock:
                workers, self._workers = getattr(self, "_workers", []), []
        probe = self._probe_thread
        if probe is not None and probe.is_alive():
            probe.join(timeout=_JOIN_TIMEOUT_S)
        if already:
            return
        with self._admit_cond:
            self._admit_cond.notify_all()
        for worker in workers:
            with worker.lock:
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError, ValueError):
                    pass
        for worker in workers:
            worker.process.join(timeout=_JOIN_TIMEOUT_S)
            if worker.process.is_alive():  # pragma: no cover - wedged worker
                worker.process.kill()
                worker.process.join(timeout=_JOIN_TIMEOUT_S)
            try:
                worker.conn.close()
            except OSError:
                pass
        if self._lease is not None:
            self._lease.release()
            self._lease = None
        from repro.utils.shm import arena

        arena().reap()

    def __enter__(self) -> "EngineDispatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
