"""Clients for the decision service.

Two transports, one contract: :class:`InProcessClient` calls the
engine through the very same :func:`repro.serving.service.dispatch`
function the HTTP handler uses, and :class:`HTTPClient` speaks JSON
over a socket.  A test (or benchmark) parameterised over both clients
therefore exercises identical request semantics, differing only in the
wire.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, List, Optional

from repro.exceptions import ReproError
from repro.serving.engine import InferenceEngine
from repro.serving.service import RequestError, dispatch


class ServiceError(ReproError):
    """The service answered with an error status."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


class BaseClient:
    """Endpoint helpers shared by both transports."""

    def request(self, method: str, path: str, payload: Optional[Dict] = None) -> Dict:
        raise NotImplementedError

    # -- the four serving verbs ----------------------------------------

    def transform(self, records: List) -> List[List[float]]:
        return self.request("POST", "/v1/transform", {"records": records})[
            "transformed"
        ]

    def score(self, records: List) -> List[float]:
        return self.request("POST", "/v1/score", {"records": records})["scores"]

    def rank(
        self,
        records: List,
        *,
        top_k: Optional[int] = None,
        groups: Optional[List] = None,
    ) -> Dict:
        payload: Dict = {"records": records}
        if top_k is not None:
            payload["top_k"] = top_k
        if groups is not None:
            payload["groups"] = groups
        return self.request("POST", "/v1/rank", payload)

    def decide(self, records: List, groups: List) -> Dict:
        return self.request(
            "POST", "/v1/decide", {"records": records, "groups": groups}
        )

    # -- introspection -------------------------------------------------

    def health(self) -> Dict:
        return self.request("GET", "/v1/health")

    def stats(self) -> Dict:
        return self.request("GET", "/v1/stats")


class InProcessClient(BaseClient):
    """Drive an engine directly, bypassing sockets but not semantics."""

    def __init__(self, engine: InferenceEngine):
        self.engine = engine

    def request(self, method: str, path: str, payload: Optional[Dict] = None) -> Dict:
        # Round-trip the payload through JSON so in-process callers can
        # pass nothing the HTTP transport could not carry.
        payload = json.loads(json.dumps(payload)) if payload is not None else None
        try:
            body = dispatch(self.engine, method, path, payload)
        except RequestError as exc:
            raise ServiceError(str(exc), status=exc.status)
        return json.loads(json.dumps(body))


class HTTPClient(BaseClient):
    """Talk to a running :class:`~repro.serving.service.DecisionService`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8351, timeout: float = 10.0):
        self.base_url = f"http://{host}:{port}"
        self.timeout = float(timeout)

    def request(self, method: str, path: str, payload: Optional[Dict] = None) -> Dict:
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if method.upper() == "POST":
            data = json.dumps(payload or {}).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(url, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as response:
                body = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get("error", str(exc))
            except (ValueError, UnicodeDecodeError):
                message = str(exc)
            raise ServiceError(message, status=exc.code)
        except urllib.error.URLError as exc:
            raise ServiceError(f"service unreachable: {exc.reason}", status=503)
        return body
