"""Clients for the decision service.

Two transports, one contract: :class:`InProcessClient` calls the
engine through the very same :func:`repro.serving.service.dispatch`
function the HTTP handler uses, and :class:`HTTPClient` speaks JSON
over a socket.  A test (or benchmark) parameterised over both clients
therefore exercises identical request semantics, differing only in the
wire.

Error surface: both transports raise :class:`ServiceError` subclasses
keyed by status — :class:`ServiceOverloadedError` (429, the tier shed
the request) and :class:`ServiceUnavailableError` (503 or the socket
could not be reached), each carrying the server's ``retry_after_s``
hint and the ``worker`` slot when the body named one.

Retries: :class:`HTTPClient` owns a small, safe-by-default retry
budget.  Only transport failures and 429/503 answers are retried —
the statuses the resilience layer emits for *transient* conditions —
never 4xx validation errors, and never more than ``retries`` extra
attempts.  Backoff is exponential with full jitter and honours the
server's ``Retry-After`` hint when it is larger.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional

from repro.exceptions import ReproError
from repro.serving.engine import InferenceEngine
from repro.serving.service import RequestError, dispatch


class ServiceError(ReproError):
    """The service answered with an error status."""

    def __init__(
        self,
        message: str,
        status: int = 400,
        retry_after_s: Optional[float] = None,
        worker: Optional[int] = None,
    ):
        super().__init__(message)
        self.status = status
        self.retry_after_s = retry_after_s
        self.worker = worker


class ServiceOverloadedError(ServiceError):
    """HTTP 429: the admission gate shed this request; retry later."""

    def __init__(
        self,
        message: str,
        retry_after_s: Optional[float] = None,
        worker: Optional[int] = None,
    ):
        super().__init__(
            message, status=429, retry_after_s=retry_after_s, worker=worker
        )


class ServiceUnavailableError(ServiceError):
    """HTTP 503 (or unreachable socket): no capacity right now."""

    def __init__(
        self,
        message: str,
        retry_after_s: Optional[float] = None,
        worker: Optional[int] = None,
    ):
        super().__init__(
            message, status=503, retry_after_s=retry_after_s, worker=worker
        )


def service_error(
    message: str,
    status: int,
    retry_after_s: Optional[float] = None,
    worker: Optional[int] = None,
) -> ServiceError:
    """The typed :class:`ServiceError` for ``status``."""
    if status == 429:
        return ServiceOverloadedError(
            message, retry_after_s=retry_after_s, worker=worker
        )
    if status == 503:
        return ServiceUnavailableError(
            message, retry_after_s=retry_after_s, worker=worker
        )
    return ServiceError(
        message, status=status, retry_after_s=retry_after_s, worker=worker
    )


class BaseClient:
    """Endpoint helpers shared by both transports."""

    def request(self, method: str, path: str, payload: Optional[Dict] = None) -> Dict:
        raise NotImplementedError

    # -- the four serving verbs ----------------------------------------

    def transform(self, records: List) -> List[List[float]]:
        return self.request("POST", "/v1/transform", {"records": records})[
            "transformed"
        ]

    def score(self, records: List) -> List[float]:
        return self.request("POST", "/v1/score", {"records": records})["scores"]

    def rank(
        self,
        records: List,
        *,
        top_k: Optional[int] = None,
        groups: Optional[List] = None,
    ) -> Dict:
        payload: Dict = {"records": records}
        if top_k is not None:
            payload["top_k"] = top_k
        if groups is not None:
            payload["groups"] = groups
        return self.request("POST", "/v1/rank", payload)

    def decide(self, records: List, groups: List) -> Dict:
        return self.request(
            "POST", "/v1/decide", {"records": records, "groups": groups}
        )

    # -- introspection -------------------------------------------------

    def health(self) -> Dict:
        return self.request("GET", "/v1/health")

    def stats(self) -> Dict:
        return self.request("GET", "/v1/stats")


class InProcessClient(BaseClient):
    """Drive an engine directly, bypassing sockets but not semantics."""

    def __init__(self, engine: InferenceEngine):
        self.engine = engine

    def request(self, method: str, path: str, payload: Optional[Dict] = None) -> Dict:
        # Round-trip the payload through JSON so in-process callers can
        # pass nothing the HTTP transport could not carry.
        payload = json.loads(json.dumps(payload)) if payload is not None else None
        try:
            body = dispatch(self.engine, method, path, payload)
        except RequestError as exc:
            raise service_error(
                str(exc),
                exc.status,
                retry_after_s=getattr(exc, "retry_after_s", None),
                worker=getattr(exc, "worker", None),
            )
        return json.loads(json.dumps(body))


class HTTPClient(BaseClient):
    """Talk to a running :class:`~repro.serving.service.DecisionService`.

    ``retries`` extra attempts are spent only on transport failures and
    429/503 answers (see module docstring); ``retries=0`` restores the
    fail-fast behaviour.  ``backoff_s`` is the base of the exponential
    backoff schedule, capped at ``backoff_max_s``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8351,
        timeout: float = 10.0,
        retries: int = 2,
        backoff_s: float = 0.05,
        backoff_max_s: float = 2.0,
    ):
        self.base_url = f"http://{host}:{port}"
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.backoff_max_s = float(backoff_max_s)

    def _backoff(self, attempt: int, exc: ServiceError) -> float:
        delay = min(self.backoff_max_s, self.backoff_s * (2.0 ** attempt))
        delay *= 0.5 + random.random()  # full jitter in [0.5x, 1.5x]
        hint = getattr(exc, "retry_after_s", None)
        if hint:
            # Honour the server's estimate when it is more patient than
            # ours, but never sleep past the backoff ceiling.
            delay = max(delay, min(float(hint), self.backoff_max_s))
        return delay

    def request(self, method: str, path: str, payload: Optional[Dict] = None) -> Dict:
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, payload)
            except (ServiceOverloadedError, ServiceUnavailableError) as exc:
                if attempt >= self.retries:
                    raise
                time.sleep(self._backoff(attempt, exc))
                attempt += 1

    def _request_once(
        self, method: str, path: str, payload: Optional[Dict] = None
    ) -> Dict:
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if method.upper() == "POST":
            data = json.dumps(payload or {}).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(url, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as response:
                body = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            message, retry_after, worker = str(exc), None, None
            try:
                error_body = json.loads(exc.read().decode("utf-8"))
                message = error_body.get("error", message)
                retry_after = error_body.get("retry_after_s")
                worker = error_body.get("worker")
            except (ValueError, UnicodeDecodeError):
                pass
            if retry_after is None:
                header = exc.headers.get("Retry-After") if exc.headers else None
                if header is not None:
                    try:
                        retry_after = float(header)
                    except ValueError:
                        retry_after = None
            raise service_error(
                message, exc.code, retry_after_s=retry_after, worker=worker
            )
        except urllib.error.URLError as exc:
            raise ServiceUnavailableError(f"service unreachable: {exc.reason}")
        return body
