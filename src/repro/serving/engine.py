"""Online inference over a fitted serving artifact.

The :class:`InferenceEngine` answers the four serving verbs —
``transform``, ``score``, ``rank``, ``decide`` — on top of a
:class:`~repro.serving.artifacts.ServingArtifact`.  Three mechanisms
make it fit online traffic rather than batch experiments:

* **micro-batching** — concurrent callers' records are coalesced into
  one matrix pass through the model (leader/follower pattern: the
  first caller in becomes the flusher for everything queued behind it);
* **LRU caching** — the fair representation of each record is cached
  under a hash of its raw bytes, so repeated records (hot users, retry
  storms) skip the model entirely;
* **chunked evaluation** — the model evaluates at most ``batch_size``
  rows at a time (see ``IFair.memberships``), so a single huge request
  cannot blow memory.  Each chunk goes through the row-stable kernels
  of :mod:`repro.utils.kernels`, with bitwise-identical results for
  any chunking; for models above the kernel's small-problem threshold
  (``K * N > ~200``) that means ``O(batch * K)`` extra memory per
  pass with no ``(batch, K, N)`` tensor, while tiny models use the
  difference-tensor form where it is trivially small.

All request maths is delegated to the library layers the batch
pipeline already trusts: ``IFair.transform`` for representations,
``LogisticRegression`` for scores, ``GroupThresholdAdjuster`` for
decisions, and :mod:`repro.ranking` / :mod:`repro.metrics` for ranking
order and diagnostics.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.schema import TabularDataset
from repro.exceptions import ValidationError
from repro.metrics.group import protected_share_at_k
from repro.ranking.engine import RankingEvaluation, evaluate_scores
from repro.ranking.query import Query
from repro.serving.artifacts import ServingArtifact
from repro.telemetry.fairness import FairnessMonitor
from repro.telemetry.metrics import (
    Counter,
    MetricsRegistry,
    get_registry,
    prometheus_text,
)
from repro.telemetry.tracing import get_tracer
from repro.utils.validation import check_binary_labels


class _PendingBatch:
    """One caller's rows waiting inside the micro-batcher."""

    __slots__ = ("rows", "event", "result", "error", "promoted")

    def __init__(self, rows: np.ndarray):
        self.rows = rows
        self.event = threading.Event()
        self.result: Optional[np.ndarray] = None
        self.error: Optional[BaseException] = None
        self.promoted = False


class MicroBatcher:
    """Coalesce concurrent row batches into single model passes.

    ``submit`` enqueues rows and blocks until a flush delivers their
    results.  The first thread to find no flush in progress becomes the
    *leader*: it optionally waits ``max_delay`` seconds for followers
    to pile in, then runs ``fn`` once over every queued row and wakes
    all waiters.  With ``max_delay=0`` a lone caller pays no latency —
    coalescing then only captures rows that were already queued.
    """

    def __init__(
        self,
        fn,
        *,
        max_delay: float = 0.0,
        flush_counter: Optional[Counter] = None,
        coalesced_counter: Optional[Counter] = None,
    ):
        if max_delay < 0:
            raise ValidationError("max_delay must be non-negative")
        self._fn = fn
        self._max_delay = float(max_delay)
        self._lock = threading.Lock()
        self._queue: List[_PendingBatch] = []
        self._flushing = False
        # Counters live in the owning engine's metrics registry when one
        # is supplied, so /v1/metrics and these attributes agree by
        # construction; standalone batchers get private counters.
        self._n_flushes = flush_counter if flush_counter is not None else Counter()
        self._n_coalesced = (
            coalesced_counter if coalesced_counter is not None else Counter()
        )

    @property
    def n_flushes(self) -> int:
        return int(self._n_flushes.value)

    @property
    def n_coalesced(self) -> int:
        return int(self._n_coalesced.value)

    def submit(self, rows: np.ndarray) -> np.ndarray:
        with self._lock:
            solo = self._max_delay == 0.0 and not self._flushing and not self._queue
            if solo:
                self._flushing = True
            else:
                entry = _PendingBatch(rows)
                self._queue.append(entry)
                leader = not self._flushing
                if leader:
                    self._flushing = True
        if solo:
            # Uncontended fast path (the p50/p99 single-record route):
            # no queue entry, no Event, no concatenate — one lock
            # round-trip and the model pass itself.  Followers that
            # queued during the pass inherit leadership on the way out.
            self._n_flushes.inc()
            try:
                return self._fn(rows)
            finally:
                with self._lock:
                    if self._queue:
                        successor = self._queue[0]
                        successor.promoted = True
                        successor.event.set()
                    else:
                        self._flushing = False
        if leader:
            if self._max_delay > 0:
                time.sleep(self._max_delay)
            self._drain(entry)
        else:
            entry.event.wait()
            if entry.promoted and entry.result is None and entry.error is None:
                # the previous leader finished its own work and handed
                # the flush duty to us; our rows are still queued
                self._drain(entry)
        if entry.error is not None:
            raise entry.error
        assert entry.result is not None
        return entry.result

    def _drain(self, own: _PendingBatch) -> None:
        """Leader loop: flush queued batches until done or handed off.

        The ``_flushing`` flag stays set for the whole drain, so rows
        arriving while a model pass is in flight queue up and ride the
        *next* pass instead of starting their own.  Once the leader's
        own rows are answered it hands leadership to the oldest queued
        entry instead of draining forever — under a sustained request
        stream this bounds every caller's latency to ~2 model passes
        rather than starving whichever thread became leader first.
        """
        while True:
            with self._lock:
                if not self._queue:
                    self._flushing = False
                    return
                if own.result is not None or own.error is not None:
                    successor = self._queue[0]
                    successor.promoted = True
                    successor.event.set()
                    return
                batch, self._queue = self._queue, []
            self._flush(batch)

    def _flush(self, batch: List[_PendingBatch]) -> None:
        self._n_flushes.inc()
        if len(batch) > 1:
            self._n_coalesced.inc(len(batch) - 1)
        try:
            stacked = np.concatenate([entry.rows for entry in batch], axis=0)
            results = self._fn(stacked)
            offset = 0
            for entry in batch:
                n = entry.rows.shape[0]
                entry.result = results[offset : offset + n]
                offset += n
        except BaseException as exc:  # deliver the failure to every waiter
            for entry in batch:
                entry.error = exc
        finally:
            for entry in batch:
                entry.event.set()


class LRUCache:
    """Thread-safe byte-key -> array LRU with hit/miss accounting."""

    def __init__(
        self,
        capacity: int,
        *,
        hit_counter: Optional[Counter] = None,
        miss_counter: Optional[Counter] = None,
    ):
        if capacity < 0:
            raise ValidationError("cache capacity must be non-negative")
        self.capacity = int(capacity)
        self._store: "OrderedDict[bytes, np.ndarray]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = hit_counter if hit_counter is not None else Counter()
        self._misses = miss_counter if miss_counter is not None else Counter()

    @property
    def hits(self) -> int:
        return int(self._hits.value)

    @property
    def misses(self) -> int:
        return int(self._misses.value)

    def get(self, key: bytes) -> Optional[np.ndarray]:
        with self._lock:
            value = self._store.get(key)
            if value is not None:
                self._store.move_to_end(key)
        if value is None:
            self._misses.inc()
            return None
        self._hits.inc()
        return value

    def put(self, key: bytes, value: np.ndarray) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._store[key] = value
            self._store.move_to_end(key)
            while len(self._store) > self.capacity:
                self._store.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)


class InferenceEngine:
    """Serve a fitted pipeline to online callers.

    Parameters
    ----------
    artifact:
        The fitted pipeline to serve.
    batch_size:
        Upper bound on rows per model evaluation (chunking).
    cache_size:
        Per-record representation cache capacity; 0 disables caching.
    max_batch_delay:
        Seconds the micro-batch leader waits for followers.  The
        default 0 adds no latency; raise it (e.g. to 0.002) to trade
        latency for throughput under heavy concurrency.
    micro_batch:
        Disable to bypass the batcher entirely (diagnostics only).
    """

    def __init__(
        self,
        artifact: ServingArtifact,
        *,
        batch_size: int = 256,
        cache_size: int = 4096,
        max_batch_delay: float = 0.0,
        micro_batch: bool = True,
    ):
        if batch_size < 1:
            raise ValidationError("batch_size must be a positive integer")
        self.artifact = artifact
        self.batch_size = int(batch_size)
        # Every serving counter lives in a per-engine registry — two
        # engines in one process never mix series, and /v1/metrics
        # renders this registry merged with the process-wide one.
        self.registry = MetricsRegistry()
        self._cache = LRUCache(
            cache_size,
            hit_counter=self.registry.counter("serving_cache_hits_total"),
            miss_counter=self.registry.counter("serving_cache_misses_total"),
        )
        self._batcher = MicroBatcher(
            self._represent,
            max_delay=max_batch_delay,
            flush_counter=self.registry.counter("serving_batch_flushes_total"),
            coalesced_counter=self.registry.counter(
                "serving_coalesced_requests_total"
            ),
        )
        self._micro_batch = bool(micro_batch)
        self._requests = self.registry.counter("serving_requests_total")
        self._records = self.registry.counter("serving_records_total")
        self._latency: Dict[str, object] = {
            verb: self.registry.histogram(
                "serving_request_seconds", {"verb": verb}
            )
            for verb in ("transform", "score", "rank", "decide")
        }
        self.monitor = FairnessMonitor(
            artifact.protected_indices, registry=self.registry
        )
        # Attached by serve_artifact(online_refit=True); the HTTP layer
        # taps data-plane traffic into it and routes /v1/admin/online.
        self.online_controller = None
        self.started_at = time.time()
        # Per-request config resolution hoisted out of the hot loop:
        # the artifact's layout is immutable once served, so the
        # attribute chains are bound once rather than re-resolved on
        # every record.
        self._model = artifact.model
        self._encoder = artifact.encoder
        self._scaler = artifact.scaler
        self._n_features = int(artifact.n_features)

    @property
    def n_requests(self) -> int:
        return int(self._requests.value)

    @property
    def n_records(self) -> int:
        return int(self._records.value)

    @property
    def uptime_s(self) -> float:
        """Seconds since this engine was constructed."""
        return time.time() - self.started_at

    # ------------------------------------------------------------------
    # record ingestion

    def _encode(self, records) -> np.ndarray:
        """Raw request records -> the encoded numeric feature space."""
        if self._encoder is not None:
            X = self._encoder.transform(np.asarray(records, dtype=object))
        else:
            X = np.asarray(records, dtype=np.float64)
            if X.ndim == 1:
                X = X.reshape(1, -1)
            if X.ndim != 2:
                raise ValidationError("records must be a 2-D array-like")
        if X.shape[0] == 0:
            raise ValidationError("records must not be empty")
        if X.shape[1] != self._n_features:
            raise ValidationError(
                f"records have {X.shape[1]} features, model expects "
                f"{self._n_features}"
            )
        if not np.all(np.isfinite(X)):
            raise ValidationError("records contain NaN or infinite values")
        return X

    def _represent(self, X: np.ndarray) -> np.ndarray:
        """Encoded records -> fair representation (scaler + iFair).

        Inputs were validated by :meth:`_encode`, so both stages skip
        their own re-validation scans (``validate=False`` — the
        arithmetic is the batch pipeline's, unchanged).
        """
        with get_tracer().span("serving.model_pass", n_rows=int(X.shape[0])):
            if self._scaler is not None:
                X = self._scaler.transform(X, validate=False)
            return self._model.transform(
                X, batch_size=self.batch_size, validate=False
            )

    @staticmethod
    def _keys(X: np.ndarray) -> List[bytes]:
        return [hashlib.blake2b(row.tobytes(), digest_size=16).digest() for row in X]

    def _fair_representation(self, records) -> np.ndarray:
        """Cache-aware path from raw records to fair representations."""
        X = self._encode(records)
        self._requests.inc()
        self._records.inc(X.shape[0])
        if self._cache.capacity == 0:  # skip per-row hashing entirely
            if self._micro_batch:
                return self._batcher.submit(X)
            return self._represent(X)
        keys = self._keys(X)
        Z = np.empty((X.shape[0], self.artifact.n_features))
        miss_rows: List[int] = []
        for i, key in enumerate(keys):
            cached = self._cache.get(key)
            if cached is None:
                miss_rows.append(i)
            else:
                Z[i] = cached
        if miss_rows:
            X_miss = X[miss_rows]
            if self._micro_batch:
                Z_miss = self._batcher.submit(X_miss)
            else:
                Z_miss = self._represent(X_miss)
            for j, i in enumerate(miss_rows):
                Z[i] = Z_miss[j]
                self._cache.put(keys[i], Z_miss[j].copy())
        return Z

    # ------------------------------------------------------------------
    # serving verbs

    def _score_impl(self, records) -> np.ndarray:
        if self.artifact.scorer is None:
            raise ValidationError(
                "artifact carries no scorer; fit-save with a labelled dataset"
            )
        Z = self._fair_representation(records)
        return self.artifact.scorer.predict_proba(Z)

    def transform(self, records) -> np.ndarray:
        """Fair representation of each record (Definition 3)."""
        start = time.perf_counter()
        try:
            return self._fair_representation(records)
        finally:
            self._latency["transform"].observe(time.perf_counter() - start)

    def score(self, records) -> np.ndarray:
        """P(positive outcome) per record via the artifact's scorer."""
        start = time.perf_counter()
        try:
            return self._score_impl(records)
        finally:
            self._latency["score"].observe(time.perf_counter() - start)

    def rank(
        self,
        records,
        *,
        top_k: Optional[int] = None,
        groups=None,
    ) -> Dict:
        """Order the request's candidates by predicted score.

        Returns the full ordering (best first), the per-record scores,
        and — when per-record ``groups`` are supplied — the protected
        share of the returned prefix (the paper's %protected measure).
        """
        start = time.perf_counter()
        try:
            scores = self._score_impl(records)
            order = np.argsort(-scores, kind="mergesort")
            k = scores.size if top_k is None else int(top_k)
            if k < 1:
                raise ValidationError("top_k must be a positive integer")
            k = min(k, scores.size)
            result: Dict = {
                "order": order[:k].tolist(),
                "scores": scores.tolist(),
                "top_k": k,
            }
            if groups is not None:
                groups = check_binary_labels(groups, "groups", length=scores.size)
                result["protected_share"] = protected_share_at_k(
                    order, groups, k=k
                )
            return result
        finally:
            self._latency["rank"].observe(time.perf_counter() - start)

    def decide(self, records, groups) -> Dict:
        """Accept/reject each record under the calibrated thresholds.

        Every decided record also feeds the sliding-window
        :class:`~repro.telemetry.fairness.FairnessMonitor`, whose drift
        flags ride along in the response (and in ``/v1/stats``): a
        caller logging decisions gets the live fairness state with
        them.
        """
        if self.artifact.thresholds is None:
            raise ValidationError(
                "artifact carries no decision thresholds; fit-save with "
                "--criterion to calibrate them"
            )
        start = time.perf_counter()
        try:
            scores = self._score_impl(records)
            groups = check_binary_labels(groups, "groups", length=scores.size)
            decisions = self.artifact.thresholds.predict(scores, groups)
            # decide() is not the latency-critical verb, so the extra
            # encode pass to feed the monitor's feature window is
            # acceptable (and cheap next to the scoring pass above).
            self.monitor.observe(self._encode(records), groups, decisions)
            return {
                "decisions": decisions.tolist(),
                "scores": scores.tolist(),
                "criterion": self.artifact.thresholds.criterion,
                "thresholds": {
                    str(int(g)): t
                    for g, t in sorted(
                        self.artifact.thresholds.thresholds_.items()
                    )
                },
                "fairness_drift": self.monitor.drift_flags(),
            }
        finally:
            self._latency["decide"].observe(time.perf_counter() - start)

    # ------------------------------------------------------------------
    # diagnostics

    def evaluate_ranking(
        self,
        records,
        true_scores,
        groups,
        *,
        k: int = 10,
    ) -> RankingEvaluation:
        """Offline ranking quality of the served scores on one query.

        Builds a single-query dataset from the request and reuses the
        batch evaluation engine (:func:`repro.ranking.evaluate_scores`)
        so online monitoring reports the same MAP/KT/yNN/%protected
        numbers as the paper pipeline.
        """
        X = self._encode(records)
        predicted = self.score(records)
        dataset = TabularDataset(
            name="serving-query",
            X=X,
            y=np.asarray(true_scores, dtype=np.float64).ravel(),
            protected=check_binary_labels(groups, "groups", length=X.shape[0]),
            protected_indices=self.artifact.protected_indices,
            task="ranking",
        )
        query = Query(qid=0, indices=np.arange(X.shape[0], dtype=np.intp))
        return evaluate_scores(dataset, [query], predicted, k=k)

    def stats(self) -> Dict:
        """Serving counters: traffic, cache behaviour, batching.

        Every number is read from the engine's metrics registry — the
        same instruments ``/v1/metrics`` renders — plus the fairness
        monitor's current window state.
        """
        hits, misses = self._cache.hits, self._cache.misses
        lookups = hits + misses
        self.registry.gauge("serving_cache_entries").set(len(self._cache))
        return {
            "requests": self.n_requests,
            "records": self.n_records,
            "cache_hits": hits,
            "cache_misses": misses,
            "cache_hit_ratio": (hits / lookups) if lookups else 0.0,
            "cache_entries": len(self._cache),
            "batch_flushes": self._batcher.n_flushes,
            "coalesced_requests": self._batcher.n_coalesced,
            "endpoints": sorted(self.endpoints()),
            "uptime_s": self.uptime_s,
            "fairness": self.monitor.metrics(),
        }

    def metrics_text(self) -> str:
        """Prometheus text: this engine's series + the library series.

        The library registry (:func:`repro.telemetry.metrics.get_registry`)
        carries fit/executor/shm counters — including worker deltas the
        executors reduced — so one scrape covers the whole process.
        """
        self.registry.gauge("serving_cache_entries").set(len(self._cache))
        self.registry.gauge("serving_uptime_seconds").set(self.uptime_s)
        return prometheus_text(
            self.registry.snapshot(), get_registry().snapshot()
        )

    def endpoints(self) -> List[str]:
        """Verbs this artifact can answer."""
        return serving_endpoints(self.artifact)

    def health(self) -> Dict:
        """Liveness verdict, mirroring the dispatcher's shape.

        A single in-process engine has no worker slots that can fail
        independently — if this method answers, the engine is ``ok``.
        Keeping the shape lets ``GET /v1/health`` report a uniform
        ``status`` + ``resilience`` block across both serving tiers.
        """
        return {"status": "ok", "workers": 1, "workers_alive": 1}

    def drift_flags(self) -> Dict:
        """The fairness monitor's current drift verdict.

        Uniform surface with :meth:`EngineDispatcher.drift_flags` so
        the online controller reads one method on either serving tier.
        """
        return self.monitor.drift_flags()


def serving_endpoints(artifact: ServingArtifact) -> List[str]:
    """Verbs ``artifact`` can answer, from its fitted decision heads.

    Module-level so front ends that never build a local engine (the
    multi-process dispatcher routes requests to worker-owned engines)
    can still advertise the verb list in ``/v1/health``.
    """
    verbs = ["transform"]
    if artifact.scorer is not None:
        verbs += ["score", "rank"]
        if artifact.thresholds is not None:
            verbs.append("decide")
    return verbs
