"""Versioned persistence of fitted serving pipelines.

A fitted iFair pipeline is small — prototypes ``V``, weights ``alpha``,
plus the preprocessing (one-hot encoder, scaler) and decision heads
(logistic scorer, per-group thresholds) around it — so it serialises to
a *directory artifact*:

* ``manifest.json`` — format version, component configuration, shapes,
  and a checksum of the array payload (everything human-inspectable);
* ``arrays.npz`` — every float array, stored losslessly so a reloaded
  model reproduces ``transform`` output **bitwise**.

``save_artifact`` / ``load_artifact`` round-trip a
:class:`ServingArtifact`; loading validates the manifest schema, the
format version, the checksum, and cross-component shape consistency
before reconstructing real fitted estimator objects.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.model import IFair
from repro.exceptions import ValidationError
from repro.learners.encoder import OneHotEncoder
from repro.learners.logistic import LogisticRegression
from repro.learners.scaler import StandardScaler
from repro.posthoc.thresholds import GroupThresholdAdjuster

ARTIFACT_FORMAT = "repro-serving-artifact"
ARTIFACT_VERSION = 1
MANIFEST_NAME = "manifest.json"
ARRAYS_NAME = "arrays.npz"

_REQUIRED_MANIFEST_KEYS = ("format", "version", "arrays_sha256", "model")


class ArtifactError(ValidationError):
    """A serving artifact is missing, malformed, or inconsistent."""


@dataclass
class ServingArtifact:
    """Everything the inference engine needs to answer requests.

    Attributes
    ----------
    model:
        The fitted :class:`~repro.core.model.IFair` representation.
    protected_indices:
        Encoded columns carrying protected attributes (as at fit time).
    encoder:
        Optional fitted :class:`OneHotEncoder` — present when the
        service accepts raw (mixed categorical/numeric) records.
    scaler:
        Optional fitted :class:`StandardScaler` applied before iFair.
    scorer:
        Optional fitted :class:`LogisticRegression` over the fair
        representation; required by the score/rank/decide endpoints.
    thresholds:
        Optional fitted :class:`GroupThresholdAdjuster`; required by
        the decide endpoint.
    feature_names:
        Encoded feature names (documentation only).
    metadata:
        Free-form provenance (dataset name, seed, fit configuration).
    checksum:
        SHA-256 of the array payload; set by ``save_artifact`` /
        ``load_artifact`` so the service can report which exact model
        weights it is answering with (``/v1/health``).
    """

    model: IFair
    protected_indices: np.ndarray
    encoder: Optional[OneHotEncoder] = None
    scaler: Optional[StandardScaler] = None
    scorer: Optional[LogisticRegression] = None
    thresholds: Optional[GroupThresholdAdjuster] = None
    feature_names: List[str] = field(default_factory=list)
    metadata: Dict = field(default_factory=dict)
    checksum: Optional[str] = None

    def __post_init__(self):
        if self.model.prototypes_ is None or self.model.alpha_ is None:
            raise ArtifactError("artifact requires a fitted IFair model")
        self.protected_indices = np.asarray(self.protected_indices, dtype=np.intp)

    @property
    def n_features(self) -> int:
        """Encoded input dimensionality the model expects."""
        return int(self.model.prototypes_.shape[1])


# ----------------------------------------------------------------------
# save


def _model_manifest(model: IFair) -> Dict:
    manifest = {
        "n_prototypes": model.n_prototypes,
        "lambda_util": model.lambda_util,
        "mu_fair": model.mu_fair,
        "p": model.p,
        "init": model.init,
        "loss": float(model.loss_),
        "shape": list(model.prototypes_.shape),
        "pair_mode": model.pair_mode,
    }
    if model.landmarks_ is not None:
        # Fairness-oracle provenance: anchor count + seeding strategy
        # (the anchor indices themselves ride in the array payload).
        manifest["n_landmarks"] = int(model.landmarks_.size)
        manifest["landmark_method"] = model.landmark_method
    return manifest


def artifact_payload(artifact: ServingArtifact) -> "tuple[Dict, Dict[str, np.ndarray]]":
    """Split ``artifact`` into its (manifest, arrays) wire form.

    The manifest is the JSON-safe configuration half (without the
    ``arrays_sha256`` digest, which is a property of the serialized npz
    payload and is stamped by :func:`save_artifact`); the arrays dict is
    the float payload half.  ``save_artifact`` writes both to disk, and
    the serving dispatcher publishes the arrays through the shared-memory
    arena so N worker processes rebuild the same artifact without ever
    pickling the model — :func:`assemble_artifact` is the inverse.
    """
    arrays: Dict[str, np.ndarray] = {
        "model.prototypes": artifact.model.prototypes_,
        "model.alpha": artifact.model.alpha_,
        "protected_indices": artifact.protected_indices.astype(np.int64),
    }
    if artifact.model.landmarks_ is not None:
        arrays["model.landmarks"] = artifact.model.landmarks_.astype(np.int64)
    manifest: Dict = {
        "format": ARTIFACT_FORMAT,
        "version": ARTIFACT_VERSION,
        "model": _model_manifest(artifact.model),
        "feature_names": list(artifact.feature_names),
        "metadata": dict(artifact.metadata),
    }
    if artifact.encoder is not None:
        enc = artifact.encoder
        if enc._n_input_cols is None:
            raise ArtifactError("encoder must be fitted before saving")
        manifest["encoder"] = {
            "categorical_columns": list(enc.categorical_columns),
            "n_input_cols": int(enc._n_input_cols),
            "categories": {str(c): list(v) for c, v in enc.categories_.items()},
            "feature_names": list(enc.feature_names_),
        }
    if artifact.scaler is not None:
        if artifact.scaler.mean_ is None or artifact.scaler.scale_ is None:
            raise ArtifactError("scaler must be fitted before saving")
        manifest["scaler"] = {"with_mean": artifact.scaler.with_mean}
        arrays["scaler.mean"] = artifact.scaler.mean_
        arrays["scaler.scale"] = artifact.scaler.scale_
    if artifact.scorer is not None:
        if artifact.scorer.coef_ is None:
            raise ArtifactError("scorer must be fitted before saving")
        manifest["scorer"] = {
            "l2": artifact.scorer.l2,
            "max_iter": artifact.scorer.max_iter,
            "tol": artifact.scorer.tol,
            "intercept": float(artifact.scorer.intercept_),
        }
        arrays["scorer.coef"] = artifact.scorer.coef_
    if artifact.thresholds is not None:
        if not artifact.thresholds.thresholds_:
            raise ArtifactError("threshold adjuster must be fitted before saving")
        manifest["thresholds"] = {
            "criterion": artifact.thresholds.criterion,
            "target_rate": artifact.thresholds.target_rate,
            "per_group": {
                str(int(g)): float(t)
                for g, t in artifact.thresholds.thresholds_.items()
            },
        }
    return manifest, arrays


def save_artifact(path: str, artifact: ServingArtifact) -> str:
    """Write ``artifact`` to directory ``path``; returns the path.

    The directory is created if needed.  Existing manifest/array files
    are overwritten, so a path can be re-used across refits.
    """
    os.makedirs(path, exist_ok=True)
    manifest, arrays = artifact_payload(artifact)
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    payload = buffer.getvalue()
    manifest["arrays_sha256"] = hashlib.sha256(payload).hexdigest()
    artifact.checksum = manifest["arrays_sha256"]
    with open(os.path.join(path, ARRAYS_NAME), "wb") as fh:
        fh.write(payload)
    with open(os.path.join(path, MANIFEST_NAME), "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


# ----------------------------------------------------------------------
# load


def _read_manifest(path: str) -> Dict:
    manifest_path = os.path.join(path, MANIFEST_NAME)
    if not os.path.isfile(manifest_path):
        raise ArtifactError(f"no {MANIFEST_NAME} under {path!r}")
    try:
        with open(manifest_path) as fh:
            manifest = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise ArtifactError(f"cannot read manifest: {exc}")
    if not isinstance(manifest, dict):
        raise ArtifactError("manifest must be a JSON object")
    missing = [k for k in _REQUIRED_MANIFEST_KEYS if k not in manifest]
    if missing:
        raise ArtifactError(f"manifest missing required keys {missing}")
    if manifest["format"] != ARTIFACT_FORMAT:
        raise ArtifactError(f"unknown artifact format {manifest['format']!r}")
    if manifest["version"] != ARTIFACT_VERSION:
        raise ArtifactError(
            f"unsupported artifact version {manifest['version']!r} "
            f"(this build reads version {ARTIFACT_VERSION})"
        )
    return manifest


def _read_arrays(path: str, manifest: Dict) -> Dict[str, np.ndarray]:
    arrays_path = os.path.join(path, ARRAYS_NAME)
    if not os.path.isfile(arrays_path):
        raise ArtifactError(f"no {ARRAYS_NAME} under {path!r}")
    try:
        with open(arrays_path, "rb") as fh:
            payload = fh.read()
    except OSError as exc:
        raise ArtifactError(f"cannot read array payload: {exc}")
    digest = hashlib.sha256(payload).hexdigest()
    if digest != manifest["arrays_sha256"]:
        raise ArtifactError(
            "array payload checksum mismatch — artifact is corrupt or was "
            "edited after saving"
        )
    with np.load(io.BytesIO(payload)) as npz:
        return {name: npz[name] for name in npz.files}


def _load_model(manifest: Dict, arrays: Dict[str, np.ndarray]) -> IFair:
    spec = manifest["model"]
    for key in ("n_prototypes", "lambda_util", "mu_fair", "p", "init", "shape"):
        if key not in spec:
            raise ArtifactError(f"model manifest missing {key!r}")
    for name in ("model.prototypes", "model.alpha"):
        if name not in arrays:
            raise ArtifactError(f"array payload missing {name!r}")
    prototypes = np.asarray(arrays["model.prototypes"], dtype=np.float64)
    alpha = np.asarray(arrays["model.alpha"], dtype=np.float64)
    if list(prototypes.shape) != list(spec["shape"]):
        raise ArtifactError(
            f"prototype shape {list(prototypes.shape)} disagrees with "
            f"manifest {spec['shape']}"
        )
    if alpha.shape != (prototypes.shape[1],):
        raise ArtifactError("alpha length disagrees with prototype width")
    model = IFair(
        n_prototypes=int(spec["n_prototypes"]),
        lambda_util=float(spec["lambda_util"]),
        mu_fair=float(spec["mu_fair"]),
        p=float(spec["p"]),
        init=str(spec["init"]),
        # Optional keys: absent in pre-landmark (still version-1)
        # artifacts, which load exactly as before.
        pair_mode=str(spec.get("pair_mode", "auto")),
        n_landmarks=spec.get("n_landmarks"),
        landmark_method=str(spec.get("landmark_method", "kmeans++")),
    )
    model.prototypes_ = prototypes
    model.alpha_ = alpha
    model.loss_ = float(spec.get("loss", np.inf))
    if "model.landmarks" in arrays:
        landmarks = np.asarray(arrays["model.landmarks"], dtype=np.int64)
        if "n_landmarks" in spec and int(spec["n_landmarks"]) != landmarks.size:
            raise ArtifactError(
                "landmark count disagrees between manifest and array payload"
            )
        model.landmarks_ = landmarks
    return model


def _load_encoder(spec: Dict) -> OneHotEncoder:
    encoder = OneHotEncoder(spec["categorical_columns"])
    encoder._n_input_cols = int(spec["n_input_cols"])
    encoder.categories_ = {int(c): list(v) for c, v in spec["categories"].items()}
    encoder.feature_names_ = list(spec["feature_names"])
    return encoder


def _load_scaler(spec: Dict, arrays: Dict[str, np.ndarray]) -> StandardScaler:
    for name in ("scaler.mean", "scaler.scale"):
        if name not in arrays:
            raise ArtifactError(f"array payload missing {name!r}")
    scaler = StandardScaler(with_mean=bool(spec["with_mean"]))
    scaler.mean_ = np.asarray(arrays["scaler.mean"], dtype=np.float64)
    scaler.scale_ = np.asarray(arrays["scaler.scale"], dtype=np.float64)
    scaler._fitted = True
    return scaler


def _load_scorer(spec: Dict, arrays: Dict[str, np.ndarray]) -> LogisticRegression:
    if "scorer.coef" not in arrays:
        raise ArtifactError("array payload missing 'scorer.coef'")
    scorer = LogisticRegression(
        l2=float(spec["l2"]), max_iter=int(spec["max_iter"]), tol=float(spec["tol"])
    )
    scorer.coef_ = np.asarray(arrays["scorer.coef"], dtype=np.float64)
    scorer.intercept_ = float(spec["intercept"])
    scorer._fitted = True
    return scorer


def _load_thresholds(spec: Dict) -> GroupThresholdAdjuster:
    adjuster = GroupThresholdAdjuster(
        criterion=str(spec["criterion"]), target_rate=spec.get("target_rate")
    )
    adjuster.thresholds_ = {
        float(group): float(threshold)
        for group, threshold in spec["per_group"].items()
    }
    if set(adjuster.thresholds_) != {0.0, 1.0}:
        raise ArtifactError("threshold manifest must cover groups 0 and 1")
    return adjuster


def assemble_artifact(
    manifest: Dict,
    arrays: Dict[str, np.ndarray],
    checksum: Optional[str] = None,
) -> ServingArtifact:
    """Reconstruct a :class:`ServingArtifact` from its wire form.

    Inverse of :func:`artifact_payload`: validates component manifests
    and cross-component shape consistency, then rebuilds the fitted
    estimator objects.  ``arrays`` may be backed by read-only
    shared-memory views — nothing here writes into them.  ``checksum``
    is recorded verbatim (callers that read from disk pass the verified
    ``arrays_sha256``; in-memory callers may pass ``None``).
    """
    model = _load_model(manifest, arrays)
    if "protected_indices" not in arrays:
        raise ArtifactError("array payload missing 'protected_indices'")
    protected = np.asarray(arrays["protected_indices"], dtype=np.intp)
    n_features = model.prototypes_.shape[1]
    if protected.size and (protected.min() < 0 or protected.max() >= n_features):
        raise ArtifactError("protected indices out of range for the model")

    encoder = scaler = scorer = thresholds = None
    try:
        if "encoder" in manifest:
            encoder = _load_encoder(manifest["encoder"])
        if "scaler" in manifest:
            scaler = _load_scaler(manifest["scaler"], arrays)
        if "scorer" in manifest:
            scorer = _load_scorer(manifest["scorer"], arrays)
        if "thresholds" in manifest:
            thresholds = _load_thresholds(manifest["thresholds"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactError(f"malformed component manifest: {exc!r}")

    if scaler is not None and scaler.scale_.shape[0] != n_features:
        raise ArtifactError("scaler width disagrees with the model input width")
    if encoder is not None and len(encoder.feature_names_) != n_features:
        raise ArtifactError("encoder output width disagrees with the model")
    if scorer is not None and scorer.coef_.shape[0] != n_features:
        raise ArtifactError(
            "scorer width disagrees with the representation width"
        )

    return ServingArtifact(
        model=model,
        protected_indices=protected,
        encoder=encoder,
        scaler=scaler,
        scorer=scorer,
        thresholds=thresholds,
        feature_names=list(manifest.get("feature_names", [])),
        metadata=dict(manifest.get("metadata", {})),
        checksum=checksum,
    )


def load_artifact(path: str) -> ServingArtifact:
    """Read, validate, and reconstruct an artifact directory."""
    manifest = _read_manifest(path)
    arrays = _read_arrays(path, manifest)
    return assemble_artifact(
        manifest, arrays, checksum=str(manifest["arrays_sha256"])
    )
