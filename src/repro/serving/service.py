"""JSON decision service over the inference engine (stdlib only).

The HTTP layer is deliberately thin: every endpoint is implemented in
:func:`dispatch`, a pure function from ``(engine, method, path,
payload)`` to a JSON-safe dict.  The in-process client calls
``dispatch`` directly and the HTTP handler calls it per request, so
both request paths share one implementation and cannot drift apart.

Endpoints
---------
``GET  /v1/health``     liveness + version/checksum/uptime + metadata
``GET  /v1/stats``      traffic / cache / batching / fairness counters
``GET  /v1/metrics``    Prometheus text exposition (all process series)
``POST /v1/transform``  ``{"records": [[...], ...]}`` -> fair representations
``POST /v1/score``      ``{"records": ...}`` -> outcome probabilities
``POST /v1/rank``       ``{"records": ..., "top_k"?, "groups"?}`` -> ordering
``POST /v1/decide``     ``{"records": ..., "groups": [...]}`` -> decisions
``POST /v1/admin/reload``  ``{"artifact": "<dir>"}`` -> blue/green model swap
(multi-worker tier only; see :mod:`repro.serving.dispatcher`)
``GET  /v1/admin/online``   drift-response controller status
``POST /v1/admin/online``   manual warm refit + reload (bypasses policy)
(``online_refit=True`` services only; see :mod:`repro.serving.online`)

Over HTTP, ``/v1/metrics`` answers with raw ``text/plain`` in the
Prometheus exposition format; through :func:`dispatch` (the in-process
client) the same text arrives under the ``"prometheus"`` key.  Every
handled request emits a structured access-log record (method, path,
status, latency_ms) through :mod:`repro.telemetry.logs` — quiet unless
``configure_logging`` was called.
"""

from __future__ import annotations

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

import repro
from repro.exceptions import ReproError, ValidationError
from repro.serving.artifacts import load_artifact
from repro.serving.engine import InferenceEngine
from repro.telemetry.logs import get_logger
from repro.telemetry.tracing import get_tracer

MAX_REQUEST_BYTES = 8 * 1024 * 1024

_ACCESS_LOG = get_logger("serving.access")
_SERVER_LOG = get_logger("serving.http")


#: Default ``Retry-After`` hint (seconds) for 429/503 replies whose
#: originating error did not carry a better estimate.
DEFAULT_RETRY_AFTER_S = 1.0


class RequestError(ValidationError):
    """A malformed or unanswerable service request (HTTP 4xx/503).

    Overload/unavailability statuses (429/503) carry ``retry_after_s``
    (the server's estimate of when retrying could succeed) and
    ``worker`` (the engine slot involved, when one was) so both the
    HTTP layer and the in-process client can surface them.
    """

    def __init__(
        self,
        message: str,
        status: int = 400,
        retry_after_s: Optional[float] = None,
        worker: Optional[int] = None,
    ):
        super().__init__(message)
        self.status = status
        self.retry_after_s = retry_after_s
        self.worker = worker


def error_payload(
    exc: BaseException, default_status: int = 400
) -> Tuple[int, Dict]:
    """Structured JSON error body for ``exc``.

    Every 429/503 body carries ``error`` + ``retry_after_s`` +
    ``worker`` (satellite contract of the resilience layer); other
    statuses keep the plain ``{"error": ...}`` shape.
    """
    status = int(getattr(exc, "status", default_status))
    body: Dict = {"error": str(exc)}
    if status in (429, 503):
        retry_after = getattr(exc, "retry_after_s", None)
        body["retry_after_s"] = (
            DEFAULT_RETRY_AFTER_S if retry_after is None else float(retry_after)
        )
        body["worker"] = getattr(exc, "worker", None)
    return status, body


def _require_records(payload: Dict):
    if not isinstance(payload, dict):
        raise RequestError("request body must be a JSON object")
    if "records" not in payload:
        raise RequestError("request body must carry a 'records' field")
    records = payload["records"]
    if not isinstance(records, list) or not records:
        raise RequestError("'records' must be a non-empty JSON array")
    return records


def dispatch(
    engine: InferenceEngine, method: str, path: str, payload: Optional[Dict]
) -> Dict:
    """Answer one service request; raises :class:`RequestError` on 4xx."""
    payload = payload or {}
    path = path.split("?", 1)[0]  # health probes may append query strings
    route = (method.upper(), path.rstrip("/") or path)
    if route == ("GET", "/v1/health"):
        health = {
            "status": "ok",
            "version": repro.__version__,
            # The *active* checksum: a blue/green reload swaps the
            # dispatcher's artifact, so health always names the weights
            # currently answering.
            "artifact_checksum": engine.artifact.checksum,
            "uptime_s": engine.uptime_s,
            "endpoints": engine.endpoints(),
            "n_features": engine.artifact.n_features,
            "workers": getattr(engine, "n_workers", 1),
            "metadata": engine.artifact.metadata,
        }
        # The multi-worker tier knows slot-level liveness: surface its
        # ok / degraded / unavailable verdict plus breaker detail.
        engine_health = getattr(engine, "health", None)
        if callable(engine_health):
            detail = dict(engine_health())
            health["status"] = detail.pop("status", "ok")
            health["resilience"] = detail
        return health
    if route == ("GET", "/v1/stats"):
        return engine.stats()
    if route == ("GET", "/v1/admin/online"):
        controller = getattr(engine, "online_controller", None)
        if controller is None:
            return {"enabled": False}
        return controller.status()
    if route == ("GET", "/v1/metrics"):
        # The HTTP handler unwraps this to a raw text/plain body; the
        # in-process client receives the exposition text under a key.
        return {"prometheus": engine.metrics_text()}
    try:
        if route == ("POST", "/v1/admin/online"):
            controller = getattr(engine, "online_controller", None)
            if controller is None:
                raise RequestError(
                    "online refit is not enabled "
                    "(serve with online_refit=True / --online-refit)"
                )
            # trigger() reports failures in its body instead of raising
            # — a manual refit that fails must not read as a 4xx/5xx of
            # the serving path, which is still healthy.
            return controller.trigger()
        if route == ("POST", "/v1/admin/reload"):
            if not hasattr(engine, "reload"):
                raise RequestError(
                    "model reload requires the multi-worker tier "
                    "(serve with workers >= 2)"
                )
            if not isinstance(payload, dict) or not isinstance(
                payload.get("artifact"), str
            ):
                raise RequestError(
                    "reload requires an 'artifact' directory path"
                )
            return engine.reload(payload["artifact"])
        if route == ("POST", "/v1/transform"):
            Z = engine.transform(_require_records(payload))
            return {"transformed": Z.tolist()}
        if route == ("POST", "/v1/score"):
            scores = engine.score(_require_records(payload))
            return {"scores": scores.tolist()}
        if route == ("POST", "/v1/rank"):
            records = _require_records(payload)
            return engine.rank(
                records,
                top_k=payload.get("top_k"),
                groups=payload.get("groups"),
            )
        if route == ("POST", "/v1/decide"):
            records = _require_records(payload)
            if "groups" not in payload:
                raise RequestError("decide requires a 'groups' field")
            return engine.decide(records, payload["groups"])
    except RequestError:
        raise
    except ReproError as exc:
        # Errors that know their HTTP status (e.g. the dispatcher's 503
        # on worker loss, its 429 on shed load) keep it — and their
        # retry/worker context; plain model errors stay 400s.
        raise RequestError(
            str(exc),
            status=getattr(exc, "status", 400),
            retry_after_s=getattr(exc, "retry_after_s", None),
            worker=getattr(exc, "worker", None),
        )
    except (TypeError, ValueError) as exc:
        raise RequestError(f"malformed request: {exc}")
    raise RequestError(f"no endpoint {method.upper()} {path}", status=404)


class _Handler(BaseHTTPRequestHandler):
    """Maps HTTP requests onto :func:`dispatch`."""

    server_version = "repro-serving/1"
    protocol_version = "HTTP/1.1"

    def _reply(
        self,
        status: int,
        body: Dict,
        *,
        raw: Optional[bytes] = None,
        content_type: str = "application/json",
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        data = raw if raw is not None else json.dumps(body).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError) as exc:
            # The client hung up mid-reply.  Not a server fault: eat the
            # traceback, count it, and drop the (dead) connection.
            self.close_connection = True
            registry = getattr(self.server.engine, "registry", None)
            if registry is not None:
                registry.counter("serving_client_disconnects_total").inc()
            _SERVER_LOG.warning(
                "client disconnected mid-reply",
                extra={
                    "method": self.command,
                    "path": self.path,
                    "status": status,
                    "error": type(exc).__name__,
                },
            )

    def _log_access(self, status: int, start: float) -> None:
        latency_ms = (time.perf_counter() - start) * 1000.0
        _ACCESS_LOG.log(
            20 if self.server.verbose else 10,  # INFO / DEBUG
            "%s %s",
            self.command,
            self.path,
            extra={
                "method": self.command,
                "path": self.path,
                "status": status,
                "latency_ms": round(latency_ms, 3),
            },
        )

    def _retry_after_header(self, body: Dict) -> Dict[str, str]:
        """``Retry-After`` header from a structured error body.

        HTTP wants integer delta-seconds; the JSON body keeps the
        precise float for clients that parse it.
        """
        retry_after = body.get("retry_after_s")
        if retry_after is None:
            retry_after = DEFAULT_RETRY_AFTER_S
        return {"Retry-After": str(max(1, math.ceil(float(retry_after))))}

    def _error_reply(self, exc: BaseException, default_status: int = 400) -> int:
        status, body = error_payload(exc, default_status)
        headers = (
            self._retry_after_header(body) if status in (429, 503) else None
        )
        self._reply(status, body, headers=headers)
        return status

    def _handle(self, payload: Optional[Dict]) -> None:
        start = time.perf_counter()
        status = 200
        try:
            with get_tracer().span(
                "serving.dispatch", method=self.command, path=self.path
            ):
                body = dispatch(
                    self.server.engine, self.command, self.path, payload
                )
        except RequestError as exc:
            status = self._error_reply(exc)
        else:
            if "prometheus" in body and self.path.split("?", 1)[0].rstrip(
                "/"
            ) == "/v1/metrics":
                # Prometheus scrapers expect the exposition text bare,
                # not wrapped in JSON.
                self._reply(
                    200,
                    {},
                    raw=body["prometheus"].encode("utf-8"),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
            else:
                self._reply(200, body)
        finally:
            self._log_access(status, start)

    def _handle_raw(self, engine, path: str, raw: bytes) -> None:
        """Ship the undecoded POST body straight to a worker pipe.

        The multi-process tier keeps the parent's handler threads off
        the GIL-heavy work: JSON decode, model pass, and JSON encode
        all happen inside the worker; this thread only routes bytes.
        """
        start = time.perf_counter()
        status = 500
        try:
            with get_tracer().span(
                "serving.dispatch", method="POST", path=path
            ):
                status, body = engine.handle_http(path, raw)
            headers = None
            if status in (429, 503):
                # Worker-built error bodies already carry the
                # structured retry fields — lift them into the header.
                try:
                    headers = self._retry_after_header(
                        json.loads(body.decode("utf-8"))
                    )
                except (UnicodeDecodeError, ValueError):
                    headers = self._retry_after_header({})
            self._reply(status, {}, raw=body, headers=headers)
        except ReproError as exc:
            status = self._error_reply(exc, default_status=503)
        finally:
            self._log_access(status, start)

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._handle(None)

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_REQUEST_BYTES:
            # The body is left unread, so the connection cannot be
            # reused — without this a keep-alive client's next request
            # would be parsed out of the unread body bytes.
            self.close_connection = True
            self._reply(400, {"error": "invalid or oversized request body"})
            return
        raw = self.rfile.read(length)
        engine = self.server.engine
        path = self.path.split("?", 1)[0]
        path = path.rstrip("/") or path
        controller = getattr(engine, "online_controller", None)
        if controller is not None and not path.startswith("/v1/admin"):
            # Feed the drift-response window.  tap() is a bounded
            # append that never raises — the request path continues
            # identically with or without the controller.
            controller.tap(path, raw)
        if hasattr(engine, "handle_http") and not path.startswith("/v1/admin"):
            # Admin verbs run in the parent (they orchestrate *all*
            # workers); data-plane verbs ship raw bytes to one worker.
            self._handle_raw(engine, path, raw)
            return
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._reply(400, {"error": f"request body is not valid JSON: {exc}"})
            return
        self._handle(payload)

    def log_message(self, format: str, *args) -> None:
        # http.server's own notices (malformed request lines, broken
        # pipes) route through the logging layer instead of stderr;
        # per-request access records are emitted by _handle with
        # status and latency.  Quiet by default either way.
        _SERVER_LOG.log(
            20 if self.server.verbose else 10, format % args if args else format
        )


class DecisionService:
    """Own an engine + HTTP server; usable blocking or in-thread.

    ``start()``/``stop()`` run the server on a daemon thread (tests,
    notebooks); ``serve_forever()`` blocks (the CLI path).  Binding
    port 0 picks a free port, exposed via :attr:`address`.
    """

    def __init__(
        self,
        engine: InferenceEngine,
        *,
        host: str = "127.0.0.1",
        port: int = 8351,
        verbose: bool = False,
    ):
        self.engine = engine
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.engine = engine
        self._server.verbose = verbose
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """(host, port) actually bound."""
        return self._server.server_address[:2]

    def start(self) -> "DecisionService":
        if self._thread is not None:
            raise ValidationError("service already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Drain in-flight requests and stop; loud if the thread leaks.

        ``server_close()`` joins every live handler thread
        (``ThreadingMixIn`` with ``block_on_close``), so requests in
        flight complete before the engine — possibly a multi-process
        dispatcher — is torn down beneath them.  A server thread that
        survives its join is an error, not a shrug: it would keep the
        port bound and pin the engine alive invisibly.
        """
        self._server.shutdown()
        self._server.server_close()
        thread, self._thread = self._thread, None
        leaked = thread is not None and (
            thread.join(timeout=timeout) or thread.is_alive()
        )
        self._stop_engine()
        if leaked:
            message = (
                f"server thread failed to stop within {timeout:.1f}s; "
                "a handler is wedged and the listening socket may stay bound"
            )
            _SERVER_LOG.error(message)
            raise ReproError(message)

    def _stop_engine(self) -> None:
        # The controller schedules reloads through the engine, so it
        # must stop before the engine is torn down beneath it.
        controller = getattr(self.engine, "online_controller", None)
        if controller is not None:
            controller.stop()
        engine_stop = getattr(self.engine, "stop", None)
        if callable(engine_stop):
            engine_stop()

    def serve_forever(self) -> None:
        try:
            self._server.serve_forever()
        finally:
            self._server.server_close()
            self._stop_engine()

    def __enter__(self) -> "DecisionService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_artifact(
    artifact_path: str,
    *,
    host: str = "127.0.0.1",
    port: int = 8351,
    batch_size: int = 256,
    cache_size: int = 4096,
    max_batch_delay: float = 0.0,
    workers: int = 1,
    deadline_s: Optional[float] = None,
    max_inflight: Optional[int] = None,
    shed_queue_s: float = 0.1,
    max_retries: int = 2,
    breaker_threshold: int = 5,
    breaker_window_s: float = 30.0,
    chaos=None,
    online_refit: bool = False,
    refresh_window: int = 512,
    drift_policy: str = "either",
    refit_cooldown_s: float = 30.0,
    verbose: bool = False,
) -> DecisionService:
    """Load an artifact directory and build a (not yet started) service.

    ``workers=1`` (the default) serves a single in-process engine —
    simplest to debug, no child processes.  ``workers >= 2`` builds an
    :class:`~repro.serving.dispatcher.EngineDispatcher`: N forked
    engine workers sharing the model read-only through the shm arena,
    with ``POST /v1/admin/reload`` blue/green swaps enabled.

    ``deadline_s`` / ``max_inflight`` / ``shed_queue_s`` /
    ``max_retries`` / ``chaos`` shape the dispatcher's resilience layer
    (per-request deadlines, admission control, reroute retries, fault
    injection) — they apply to the multi-worker tier only and are
    rejected for ``workers=1``, where there is no worker pipe to bound.
    ``breaker_threshold`` deaths within ``breaker_window_s`` evict a
    worker slot; chaos soaks should raise the threshold above the
    injected death rate (the breaker targets deterministic crash
    loops, not recoverable fault storms).

    ``online_refit=True`` attaches an
    :class:`~repro.serving.online.OnlineController`: served traffic is
    tapped into a ``refresh_window``-row sliding window, drift (per
    ``drift_policy``, one of :data:`~repro.serving.online.DRIFT_POLICIES`)
    triggers a warm ``partial_fit`` refit over the window — at most
    once per ``refit_cooldown_s`` — and the refreshed artifact is
    hot-swapped through the blue/green reload.  Requires ``workers >=
    2`` (the single-engine tier cannot reload).
    """
    if int(workers) < 1:
        raise ValidationError("workers must be a positive integer")
    resilience_requested = (
        deadline_s is not None or max_inflight is not None or chaos is not None
    )
    if int(workers) == 1 and resilience_requested:
        raise ValidationError(
            "deadline/admission/chaos knobs need the multi-worker tier "
            "(serve with workers >= 2)"
        )
    if online_refit and int(workers) == 1:
        raise ValidationError(
            "online refit needs the multi-worker tier "
            "(serve with workers >= 2)"
        )
    policy = None
    if online_refit:
        from repro.serving.online import DriftPolicy

        # Validate the knobs before any worker is forked.
        policy = DriftPolicy(
            policy=drift_policy,
            refresh_window=int(refresh_window),
            min_window=min(64, int(refresh_window)),
            cooldown_s=float(refit_cooldown_s),
        )
    artifact = load_artifact(artifact_path)
    if int(workers) == 1:
        engine = InferenceEngine(
            artifact,
            batch_size=batch_size,
            cache_size=cache_size,
            max_batch_delay=max_batch_delay,
        )
    else:
        from repro.serving.dispatcher import EngineDispatcher

        engine = EngineDispatcher(
            artifact,
            n_workers=int(workers),
            batch_size=batch_size,
            cache_size=cache_size,
            max_batch_delay=max_batch_delay,
            deadline_s=deadline_s,
            max_inflight=max_inflight,
            shed_queue_s=shed_queue_s,
            max_retries=max_retries,
            breaker_threshold=breaker_threshold,
            breaker_window_s=breaker_window_s,
            chaos=chaos,
        )
    try:
        if policy is not None:
            from repro.serving.online import OnlineController

            engine.online_controller = OnlineController(
                engine, artifact_path, policy
            ).start()
        return DecisionService(engine, host=host, port=port, verbose=verbose)
    except BaseException:
        # Bind failures must not leak forked workers (or the
        # controller's background thread).
        controller = getattr(engine, "online_controller", None)
        if controller is not None:
            controller.stop()
        engine_stop = getattr(engine, "stop", None)
        if callable(engine_stop):
            engine_stop()
        raise

