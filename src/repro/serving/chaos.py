"""Chaos fault plane for the serving tier.

PR 8 proved fault-injection testing on the training side with a
one-shot env hook (``REPRO_SHARD_FAULT``): kill the worker holding one
shard and assert the refit is bitwise identical.  This module
generalises that discipline to the serving tier, where failures are
user-visible.  A :class:`ChaosPlane` lives **inside each engine
worker** and injects faults at the worker's pipe boundary — the exact
seam the dispatcher's resilience layer (deadlines, reroutes, breaker)
must cover:

``crash``
    the worker ``os._exit``\\ s before answering — the parent sees a
    broken pipe, marks the slot dead, and reroutes the request;
``hang``
    the worker sleeps ``hang_s`` without answering — the parent's
    per-request deadline expires, the worker is killed, and the
    request is rerouted;
``slow``
    the worker sleeps ``slow_ms`` and then answers normally — the
    reply must still land inside the deadline (exercises the poll
    loop without a kill);
``corrupt``
    the worker sends a malformed frame instead of the reply — the
    parent cannot trust the stream anymore, kills the worker, and
    reroutes.

Faults apply to data-plane (``http``) messages only; admin traffic
(``ping`` probes, blue/green ``load`` flips) is left alone so chaos
runs can still assert reload semantics deterministically.

Configuration is a :class:`ChaosConfig`, built programmatically
(tests, benchmarks) or parsed from the ``REPRO_CHAOS`` environment
variable::

    REPRO_CHAOS="crash=0.02,hang=0.01,slow=0.05,slow_ms=30,seed=7"

Probabilities are per-request and drawn from a per-worker
deterministic stream when ``seed`` is set.  ``crash_once``/
``hang_once`` name token files: the first worker to atomically remove
the token fires that fault exactly once fleet-wide — the serving twin
of PR 8's shard-fault token, used by the hung-worker regression test.

Because every fault either delays a reply or destroys the worker
before/instead of replying — never after mutating anything a response
depends on — a chaos run's *answers* must stay bitwise-identical to a
fault-free run.  ``tests/stress/test_serving_chaos.py`` pins exactly
that.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, fields
from typing import Optional

from repro.exceptions import ValidationError

__all__ = ["CHAOS_ENV", "ChaosConfig", "ChaosPlane"]

#: Environment hook: a :meth:`ChaosConfig.parse` spec string.
CHAOS_ENV = "REPRO_CHAOS"

#: Exit code of a chaos-crashed worker (distinguishable from real
#: crashes in process tables while debugging a chaos run).
CHAOS_EXIT_CODE = 23

#: Sent instead of the real reply by the ``corrupt`` fault — a frame
#: the dispatcher's ``(kind, status, body, telemetry)`` unpack rejects.
CORRUPT_FRAME = ("chaos-corrupt-frame",)

_PROBABILITY_FIELDS = ("crash", "hang", "slow", "corrupt")


@dataclass(frozen=True)
class ChaosConfig:
    """Fault probabilities and shapes for one chaos run.

    ``crash``/``hang``/``slow``/``corrupt`` are per-request
    probabilities (mutually exclusive per draw; their sum must stay
    <= 1).  ``slow_ms`` shapes the slow-reply fault, ``hang_s`` bounds
    a hang that no deadline ever kills.  ``seed`` makes each worker's
    fault stream deterministic (derived per worker index).
    ``crash_once``/``hang_once`` are one-shot token-file faults (see
    module docstring).
    """

    crash: float = 0.0
    hang: float = 0.0
    slow: float = 0.0
    corrupt: float = 0.0
    slow_ms: float = 25.0
    hang_s: float = 3600.0
    seed: Optional[int] = None
    crash_once: Optional[str] = None
    hang_once: Optional[str] = None

    def __post_init__(self):
        total = 0.0
        for name in _PROBABILITY_FIELDS:
            value = float(getattr(self, name))
            if not 0.0 <= value <= 1.0:
                raise ValidationError(
                    f"chaos probability {name!r} must lie in [0, 1], "
                    f"got {value!r}"
                )
            total += value
        if total > 1.0 + 1e-12:
            raise ValidationError(
                f"chaos probabilities sum to {total:.3f} > 1"
            )
        if float(self.slow_ms) < 0 or float(self.hang_s) < 0:
            raise ValidationError("slow_ms and hang_s must be non-negative")

    @property
    def enabled(self) -> bool:
        """True when any fault can ever fire."""
        return (
            any(float(getattr(self, name)) > 0 for name in _PROBABILITY_FIELDS)
            or self.crash_once is not None
            or self.hang_once is not None
        )

    @classmethod
    def parse(cls, spec: str) -> "ChaosConfig":
        """Build a config from a ``key=value,key=value`` spec string."""
        if not isinstance(spec, str) or not spec.strip():
            raise ValidationError("chaos spec must be a non-empty string")
        known = {f.name: f for f in fields(cls)}
        kwargs: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValidationError(
                    f"chaos spec entry {part!r} is not key=value"
                )
            key, value = (token.strip() for token in part.split("=", 1))
            if key not in known:
                raise ValidationError(
                    f"unknown chaos spec key {key!r} "
                    f"(known: {', '.join(sorted(known))})"
                )
            if key in ("crash_once", "hang_once"):
                kwargs[key] = value
            elif key == "seed":
                kwargs[key] = int(value)
            else:
                kwargs[key] = float(value)
        return cls(**kwargs)

    @classmethod
    def from_env(cls, environ=None) -> Optional["ChaosConfig"]:
        """The ``REPRO_CHAOS`` config, or None when unset/empty."""
        spec = (environ or os.environ).get(CHAOS_ENV, "").strip()
        if not spec:
            return None
        return cls.parse(spec)


class ChaosPlane:
    """Per-worker fault injector driven by a :class:`ChaosConfig`.

    Lives in the engine worker process; :meth:`inject` is called once
    per data-plane request, *before* the request is answered.  Returns
    True when the fault consumed the request (a corrupt frame was
    already sent in place of the reply) — the caller must then skip
    its own reply.  ``crash`` never returns; ``hang``/``slow`` return
    False after sleeping so the worker answers normally if it is still
    alive (the parent usually kills a hung worker mid-sleep).

    ``generation`` is the slot's respawn count: without it a seeded
    replacement worker would replay its predecessor's exact fault
    stream, turning one drawn hang into a deterministic hang-on-every-
    respawn loop.  Mixing the generation in keeps runs reproducible
    (same seed + same fault history => same draws) while giving each
    respawn a fresh stream.
    """

    def __init__(
        self, config: ChaosConfig, worker_index: int = 0, generation: int = 0
    ):
        self.config = config
        self.worker_index = int(worker_index)
        self.generation = int(generation)
        if config.seed is None:
            self._rng = random.Random()
        else:
            # String seeds hash through sha512: deterministic across
            # processes and platforms, and distinct per coordinate.
            self._rng = random.Random(
                f"{int(config.seed)}:{self.worker_index}:{self.generation}"
            )

    def draw(self) -> Optional[str]:
        """The fault kind for one request, or None (no fault).

        One-shot token faults take precedence: the first worker to
        atomically remove the token file claims the fault.
        """
        for kind, path in (
            ("crash", self.config.crash_once),
            ("hang", self.config.hang_once),
        ):
            if path and os.path.exists(path):
                try:
                    os.remove(path)
                except OSError:
                    continue  # a sibling worker claimed it first
                return kind
        u = self._rng.random()
        edge = 0.0
        for kind in _PROBABILITY_FIELDS:
            edge += float(getattr(self.config, kind))
            if u < edge:
                return kind
        return None

    def inject(self, conn) -> bool:
        """Apply one drawn fault at the pipe boundary (see class doc)."""
        fault = self.draw()
        if fault is None:
            return False
        if fault == "crash":
            os._exit(CHAOS_EXIT_CODE)
        if fault == "hang":
            time.sleep(float(self.config.hang_s))
            return False
        if fault == "slow":
            time.sleep(float(self.config.slow_ms) / 1000.0)
            return False
        # corrupt: poison the stream instead of replying
        conn.send(CORRUPT_FRAME)
        return True
