"""Serving-side drift response: watch traffic, warm-refit, hot-swap.

This is the closed loop the serving tier was missing: the
:class:`~repro.telemetry.fairness.FairnessMonitor` (PR 6) raises drift
flags, blue/green ``POST /v1/admin/reload`` (PR 7) swaps models with
zero downtime, and ``IFair.partial_fit`` warm-starts refits from the
served weights — the :class:`OnlineController` connects them.

The controller runs on one daemon thread next to the HTTP front end:

1. **Tap** — the HTTP handler hands it the raw bytes of every
   data-plane POST (:meth:`OnlineController.tap` is append-to-deque
   cheap and never raises, so the serving path cannot be degraded by
   it).  A background tick parses the tapped payloads, pushes the
   records through the *frozen* encoder + scaler, and keeps the last
   ``refresh_window`` encoded rows.
2. **Detect** — two independent drift signals: the fairness monitor's
   flags (merged across worker processes through their relabelled
   ``fairness_drift`` gauges) and a covariate-shift statistic — the
   mean nearest-anchor distance of the window over its baseline value
   (:func:`repro.utils.landmarks.anchor_assignment_cost`).  The
   baseline freezes at the *median* of ``calibration_ticks`` window
   costs and the published ratio is EMA-smoothed
   (``shift_smoothing``), so tick-to-tick window-composition noise
   under interleaved clients cannot trip the threshold on a
   stationary stream.  The ``DriftPolicy.policy`` knob picks which
   signal (or combination) triggers a response.
3. **Respond** — rate-limited by ``cooldown_s``: warm ``partial_fit``
   over the buffered window, landmark re-anchoring over the same
   window, a new *versioned* artifact directory written under
   ``<artifact>/online/vNNNN``, and the existing blue/green reload.
   Every step is wrapped: a failed refit or reload counts
   ``online_refit_failures_total`` and leaves the serving path on the
   current model — chaos storms degrade the *response*, never the
   service.

Only the model is refreshed.  Served traffic carries no labels, so the
scorer and the per-group decision thresholds cannot be legitimately
re-estimated online — they stay frozen from the fitted artifact, and
the refit preserves the representation geometry they were calibrated
on via the warm start.

Observability: ``online_refits_total``, ``drift_reloads_total``,
``online_refit_failures_total`` counters, an ``online_refit_seconds``
histogram, ``online_shift_ratio`` / ``online_window_rows`` gauges (all
in the engine's registry, so ``/v1/metrics`` scrapes them), spans
under ``serving.online.*``, and the ``GET /v1/admin/online`` status
endpoint (``POST`` triggers a manual refit).
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import asdict, dataclass
from json import JSONDecodeError, loads
from typing import Deque, Dict, List, Optional

import numpy as np

from repro.core.model import IFair
from repro.exceptions import ValidationError
from repro.serving.artifacts import ServingArtifact, save_artifact
from repro.telemetry.logs import get_logger
from repro.telemetry.tracing import get_tracer
from repro.utils.landmarks import anchor_assignment_cost, refresh_landmarks

_LOG = get_logger("serving.online")

#: How a refit/reload is triggered: the fairness ``monitor`` flags, the
#: covariate ``shift`` statistic, ``either`` signal (default), or only
#: when ``both`` agree (the conservative, flap-proof setting).
DRIFT_POLICIES = ("monitor", "shift", "either", "both")

#: Raw payloads buffered between control ticks.  Bounds parent-side
#: memory under request storms; the window itself has its own bound.
_TAP_CAPACITY = 1024


@dataclass(frozen=True)
class DriftPolicy:
    """Knobs of the online drift-response loop.

    Attributes
    ----------
    policy:
        One of :data:`DRIFT_POLICIES` — which drift signal schedules a
        refit.
    refresh_window:
        Sliding-window bound: rows buffered for the shift statistic,
        the landmark re-anchoring, and the ``partial_fit`` refit.
    min_window:
        Rows required before the shift baseline freezes and automatic
        refits are considered (prevents refitting on a handful of
        early requests).
    shift_threshold:
        ``cost / baseline_cost`` ratio above which the window counts
        as shifted (1.0 = covered exactly as tightly as at baseline).
    cooldown_s:
        Minimum seconds between automatic refits — the rate limit that
        keeps a noisy signal from flapping reloads.
    check_interval_s:
        Control-tick period of the background thread.
    calibration_ticks:
        Window-cost samples (one per control tick) pooled into the
        baseline, which freezes at their *median*.  A single window
        realisation is noisy — under interleaved clients the sliding
        window's composition varies tick to tick — and a noisy-low
        baseline inflates every later ratio.  The stream should be
        steady while the baseline calibrates.
    shift_smoothing:
        EMA weight of the newest cost ratio in the published shift
        statistic (1.0 = raw, unsmoothed).  Transient composition
        spikes decay instead of tripping the threshold; a real
        sustained shift still crosses it within a tick or two.
    refit_restarts / refit_max_iter:
        Optimisation budget of the online refit (warm-started, so far
        smaller than the offline fit's).
    """

    policy: str = "either"
    refresh_window: int = 512
    min_window: int = 64
    shift_threshold: float = 1.25
    cooldown_s: float = 30.0
    check_interval_s: float = 0.25
    calibration_ticks: int = 5
    shift_smoothing: float = 0.3
    refit_restarts: int = 1
    refit_max_iter: int = 60

    def __post_init__(self):
        if self.policy not in DRIFT_POLICIES:
            raise ValidationError(
                f"drift policy must be one of {DRIFT_POLICIES}, "
                f"got {self.policy!r}"
            )
        if self.refresh_window < 2:
            raise ValidationError("refresh_window must be at least 2")
        if not 2 <= self.min_window <= self.refresh_window:
            raise ValidationError(
                "min_window must lie in [2, refresh_window]"
            )
        if not self.shift_threshold > 0:
            raise ValidationError("shift_threshold must be positive")
        if self.cooldown_s < 0:
            raise ValidationError("cooldown_s must be non-negative")
        if not self.check_interval_s > 0:
            raise ValidationError("check_interval_s must be positive")
        if self.calibration_ticks < 1:
            raise ValidationError("calibration_ticks must be at least 1")
        if not 0.0 < self.shift_smoothing <= 1.0:
            raise ValidationError("shift_smoothing must lie in (0, 1]")
        if self.refit_restarts < 1 or self.refit_max_iter < 1:
            raise ValidationError(
                "refit_restarts and refit_max_iter must be positive"
            )


class OnlineController:
    """Drive warm refits + blue/green reloads from drift signals.

    Parameters
    ----------
    engine:
        The serving engine whose model is kept fresh.  Needs
        ``artifact`` and ``registry``; automatic *reloads* additionally
        need ``reload`` (the multi-worker dispatcher) — without it the
        controller still refits and versions artifacts, and reports
        ``reload: unsupported`` in its status.
    artifact_path:
        Directory of the served artifact; versioned online artifacts
        are written under ``<artifact_path>/online/vNNNN``.
    policy:
        A :class:`DriftPolicy`; defaults to the default policy.
    """

    def __init__(
        self,
        engine,
        artifact_path: str,
        policy: Optional[DriftPolicy] = None,
        *,
        registry=None,
    ):
        self.engine = engine
        self.artifact_path = str(artifact_path)
        self.policy = policy if policy is not None else DriftPolicy()
        self.registry = registry if registry is not None else engine.registry
        self._refits = self.registry.counter("online_refits_total")
        self._reloads = self.registry.counter("drift_reloads_total")
        self._failures = self.registry.counter("online_refit_failures_total")
        self._refit_seconds = self.registry.histogram("online_refit_seconds")
        self._shift_gauge = self.registry.gauge("online_shift_ratio")
        self._window_gauge = self.registry.gauge("online_window_rows")
        self._tap: Deque[bytes] = deque(maxlen=_TAP_CAPACITY)
        self._tap_lock = threading.Lock()
        self._data_lock = threading.Lock()
        self._refit_lock = threading.Lock()
        self._window: Deque[np.ndarray] = deque(
            maxlen=self.policy.refresh_window
        )
        self._pending: Deque[np.ndarray] = deque(
            maxlen=self.policy.refresh_window
        )
        self._anchors: Optional[np.ndarray] = None
        self._baseline_cost: Optional[float] = None
        self._calibration: List[float] = []
        self._shift = 1.0
        self._model: Optional[IFair] = None
        self._version = 0
        self._last_refit_at: Optional[float] = None
        self._last_result: Optional[Dict] = None
        self._last_error: Optional[str] = None
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # serving-path hook

    def tap(self, path: str, raw: bytes) -> None:
        """Hand the controller one data-plane POST body (cheap, safe).

        Called from the HTTP handler threads — one lock round-trip and
        a bounded append; any exception is swallowed because nothing
        about drift response may degrade the request path.
        """
        try:
            if not raw or path.startswith("/v1/admin"):
                return
            with self._tap_lock:
                self._tap.append(raw)
        except Exception:  # pragma: no cover - by-construction unreachable
            pass

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> "OnlineController":
        if self._thread is not None:
            raise ValidationError("online controller already started")
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-serving-online", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop_event.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=timeout)

    def _loop(self) -> None:
        while not self._stop_event.wait(self.policy.check_interval_s):
            try:
                self.step()
            except Exception as exc:  # chaos-safe: the loop never dies
                self._failures.inc()
                self._last_error = repr(exc)
                _LOG.warning(
                    "online control tick failed", extra={"error": repr(exc)}
                )

    # ------------------------------------------------------------------
    # control tick

    def step(self) -> Optional[Dict]:
        """One control tick: ingest taps, update signals, maybe refit."""
        self._ingest_tapped()
        self._update_shift()
        if not self._should_refit():
            return None
        return self._refit_and_reload("auto")

    def trigger(self) -> Dict:
        """Manual refit+reload (the ``POST /v1/admin/online`` path).

        Bypasses the drift policy and the cooldown, but still needs at
        least 2 buffered rows to refit on.
        """
        self._ingest_tapped()
        self._update_shift()
        return self._refit_and_reload("manual", force=True)

    def _ingest_tapped(self) -> None:
        with self._tap_lock:
            if not self._tap:
                return
            drained = list(self._tap)
            self._tap.clear()
        artifact = self.engine.artifact
        n_features = artifact.model.prototypes_.shape[1]
        rows: List[np.ndarray] = []
        for raw in drained:
            try:
                payload = loads(raw.decode("utf-8"))
                records = payload.get("records")
                if not isinstance(records, list) or not records:
                    continue
                if artifact.encoder is not None:
                    X = artifact.encoder.transform(
                        np.asarray(records, dtype=object)
                    )
                else:
                    X = np.asarray(records, dtype=np.float64)
                    if X.ndim == 1:
                        X = X.reshape(1, -1)
                if X.ndim != 2 or X.shape[1] != n_features:
                    continue
                if not np.all(np.isfinite(X)):
                    continue
                if artifact.scaler is not None:
                    X = artifact.scaler.transform(X, validate=False)
                rows.extend(np.asarray(X, dtype=np.float64))
            except (UnicodeDecodeError, JSONDecodeError, ValueError, TypeError):
                # Malformed payloads were already rejected by the data
                # plane; the window only learns from servable records.
                continue
        if rows:
            with self._data_lock:
                for row in rows:
                    self._window.append(row)
                    self._pending.append(row)

    def _window_matrix(self) -> Optional[np.ndarray]:
        with self._data_lock:
            if not self._window:
                return None
            return np.asarray(self._window, dtype=np.float64)

    def _update_shift(self) -> None:
        W = self._window_matrix()
        self._window_gauge.set(0 if W is None else int(W.shape[0]))
        if W is None:
            return
        if self._anchors is None:
            if W.shape[0] < self.policy.min_window:
                return
            # First full window: choose anchors, start calibrating.
            bootstrap = refresh_landmarks(
                W,
                None,
                n_landmarks=self._n_anchors(W.shape[0]),
                random_state=0,
            )
            self._anchors = bootstrap.anchors
            self._calibration = []
        cost = anchor_assignment_cost(W, self._anchors)
        if self._baseline_cost is None:
            # Calibration: one cost sample per tick, baseline freezes
            # at their median.  A single window realisation is noisy —
            # the sliding window's duplicate composition varies tick to
            # tick under interleaved clients — and a noisy-low baseline
            # would inflate every later ratio into a spurious refit.
            self._calibration.append(float(cost))
            if len(self._calibration) >= self.policy.calibration_ticks:
                self._baseline_cost = float(np.median(self._calibration))
                self._calibration = []
            self._shift = 1.0
            self._shift_gauge.set(1.0)
            return
        base = self._baseline_cost
        raw = cost / base if base and base > 0.0 else 1.0
        # EMA: transient composition spikes decay instead of tripping
        # the threshold; a sustained real shift crosses it in a tick
        # or two (the post-shift ratio is typically several x).
        alpha = self.policy.shift_smoothing
        self._shift = (1.0 - alpha) * self._shift + alpha * raw
        self._shift_gauge.set(self._shift)

    def _n_anchors(self, window_rows: int) -> int:
        model = self.engine.artifact.model
        configured = model.n_landmarks
        if configured is None and model.landmarks_ is not None:
            configured = int(model.landmarks_.size)
        if configured is None:
            configured = 32
        # The coverage statistic needs L well below M: with L ~ M every
        # row is its own anchor, the baseline cost collapses to zero,
        # and the shift ratio degenerates to a constant 1.0.
        return max(1, min(int(configured), int(window_rows) // 4))

    def _drift_flagged(self) -> bool:
        flags = getattr(self.engine, "drift_flags", None)
        if callable(flags):
            return bool(flags().get("any", False))
        monitor = getattr(self.engine, "monitor", None)
        if monitor is not None:
            return bool(monitor.drift_flags().get("any", False))
        return False

    def _shift_flagged(self) -> bool:
        return (
            self._baseline_cost is not None
            and self._shift > self.policy.shift_threshold
        )

    def _should_refit(self) -> bool:
        with self._data_lock:
            window_rows = len(self._window)
            pending = len(self._pending)
        if window_rows < self.policy.min_window or pending == 0:
            return False
        if self._last_refit_at is not None:
            if time.monotonic() - self._last_refit_at < self.policy.cooldown_s:
                return False
        drift = self._drift_flagged()
        shifted = self._shift_flagged()
        if self.policy.policy == "monitor":
            return drift
        if self.policy.policy == "shift":
            return shifted
        if self.policy.policy == "both":
            return drift and shifted
        return drift or shifted

    # ------------------------------------------------------------------
    # refit + reload

    def _ensure_model(self) -> IFair:
        if self._model is not None:
            return self._model
        base_model = self.engine.artifact.model
        params = base_model.get_params()
        params.update(
            n_restarts=self.policy.refit_restarts,
            max_iter=self.policy.refit_max_iter,
            n_jobs=None,
            backend="process",
            pool="per-call",
            warm_start_theta=None,
            oracle_jobs=None,
            oracle_shards=None,
            batch_mode="full",
            batch_size=None,
        )
        model = IFair(**params)
        # Seed the warm-start chain from the served weights: the first
        # partial_fit resumes the optimiser from the live model.
        model.prototypes_ = np.array(base_model.prototypes_, copy=True)
        model.alpha_ = np.array(base_model.alpha_, copy=True)
        model.loss_ = float(base_model.loss_)
        self._model = model
        return model

    def _refit_and_reload(self, reason: str, force: bool = False) -> Dict:
        with self._refit_lock:
            now = time.monotonic()
            if not force and self._last_refit_at is not None:
                remaining = self.policy.cooldown_s - (now - self._last_refit_at)
                if remaining > 0:
                    return {"status": "cooldown", "retry_after_s": remaining}
            with self._data_lock:
                if len(self._window) < 2:
                    return {
                        "status": "skipped",
                        "reason": "window holds fewer than 2 rows",
                    }
                if not self._pending:
                    return {
                        "status": "skipped",
                        "reason": "no new rows since the last refit",
                    }
                increment = np.asarray(self._pending, dtype=np.float64)
                self._pending.clear()
            start = time.perf_counter()
            tracer = get_tracer()
            try:
                with tracer.span(
                    "serving.online.refit",
                    reason=reason,
                    n_rows=int(increment.shape[0]),
                ):
                    artifact = self.engine.artifact
                    protected = [
                        int(i)
                        for i in np.asarray(artifact.protected_indices).ravel()
                    ]
                    model = self._ensure_model()
                    model.partial_fit(
                        increment,
                        protected,
                        window_size=self.policy.refresh_window,
                    )
                    self._version += 1
                    path = os.path.join(
                        self.artifact_path, "online", f"v{self._version:04d}"
                    )
                    refreshed = ServingArtifact(
                        model=model,
                        protected_indices=artifact.protected_indices,
                        encoder=artifact.encoder,
                        scaler=artifact.scaler,
                        scorer=artifact.scorer,
                        thresholds=artifact.thresholds,
                        feature_names=list(artifact.feature_names),
                        metadata={
                            **dict(artifact.metadata),
                            "online_version": self._version,
                            "online_reason": reason,
                            "online_refit_loss": float(model.loss_),
                            "online_window_rows": int(model.n_buffered),
                        },
                    )
                    save_artifact(path, refreshed)
                    self._refits.inc()
                    answer: Dict = {
                        "status": "refitted",
                        "reason": reason,
                        "version": self._version,
                        "artifact": path,
                        "loss": float(model.loss_),
                        "window_rows": int(model.n_buffered),
                        "reload": "unsupported",
                    }
                    reload_fn = getattr(self.engine, "reload", None)
                    if callable(reload_fn):
                        with tracer.span("serving.online.reload", version=self._version):
                            reloaded = reload_fn(path)
                        self._reloads.inc()
                        answer["reload"] = "ok"
                        answer["checksum"] = reloaded.get("checksum")
                    self._rebaseline()
                    self._last_error = None
                    self._last_result = answer
                    return answer
            except Exception as exc:
                # Chaos safety: a failed refit/reload must never reach
                # the serving path.  Count it, remember it, move on —
                # the workers keep answering on the current model.
                self._failures.inc()
                self._last_error = repr(exc)
                _LOG.warning(
                    "online refit failed",
                    extra={"reason": reason, "error": repr(exc)},
                )
                failure = {"status": "failed", "reason": reason, "error": repr(exc)}
                self._last_result = failure
                return failure
            finally:
                self._last_refit_at = time.monotonic()
                self._refit_seconds.observe(time.perf_counter() - start)

    def _rebaseline(self) -> None:
        """Re-anchor over the current window and reset the baseline.

        After a refit the model *represents* the shifted distribution,
        so coverage is re-measured from anchors chosen on the window —
        the shift statistic then watches for the *next* departure
        rather than re-reporting the one just handled.
        """
        W = self._window_matrix()
        if W is None:
            return
        refreshed = refresh_landmarks(
            W,
            self._anchors,
            n_landmarks=self._n_anchors(W.shape[0]),
            random_state=self._version,
            force=True,
        )
        self._anchors = refreshed.anchors
        # Seed the new calibration with the cost under the new anchors
        # and let the next ticks complete the median — a single window
        # realisation right after the refit is the noisiest possible
        # baseline (the window still mixes pre- and post-shift rows).
        self._baseline_cost = None
        self._calibration = [
            float(anchor_assignment_cost(W, refreshed.anchors))
        ]
        if len(self._calibration) >= self.policy.calibration_ticks:
            self._baseline_cost = float(np.median(self._calibration))
            self._calibration = []
        self._shift = 1.0
        self._shift_gauge.set(1.0)

    # ------------------------------------------------------------------
    # introspection

    def status(self) -> Dict:
        """JSON-safe controller state (the ``GET /v1/admin/online`` body)."""
        with self._data_lock:
            window_rows = len(self._window)
            pending = len(self._pending)
        cooldown_remaining = 0.0
        if self._last_refit_at is not None:
            cooldown_remaining = max(
                0.0,
                self.policy.cooldown_s
                - (time.monotonic() - self._last_refit_at),
            )
        return {
            "enabled": True,
            "running": self._thread is not None,
            "policy": asdict(self.policy),
            "window_rows": window_rows,
            "pending_rows": pending,
            "baseline_cost": self._baseline_cost,
            "calibrating": (
                self._anchors is not None and self._baseline_cost is None
            ),
            "shift": self._shift if self._baseline_cost is not None else None,
            "drift_flagged": self._drift_flagged(),
            "shift_flagged": self._shift_flagged(),
            "refits": int(self._refits.value),
            "reloads": int(self._reloads.value),
            "failures": int(self._failures.value),
            "version": self._version,
            "cooldown_remaining_s": cooldown_remaining,
            "last_result": self._last_result,
            "last_error": self._last_error,
        }
