"""Vectorised numerical kernels used throughout the library.

Everything here is pure numpy, shape-documented, and numerically
stabilised (softmax/log-sum-exp shift by the row maximum, sigmoid is
computed piecewise to avoid overflow).
"""

from __future__ import annotations

import numpy as np

from repro.utils.kernels import weighted_sq_dists_rowstable


def softmax(scores: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``.

    Rows of the result are probability vectors (non-negative, sum to 1).
    """
    scores = np.asarray(scores, dtype=np.float64)
    shifted = scores - np.max(scores, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_sum_exp(scores: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable ``log(sum(exp(scores)))`` along ``axis``."""
    scores = np.asarray(scores, dtype=np.float64)
    peak = np.max(scores, axis=axis, keepdims=True)
    out = np.log(np.sum(np.exp(scores - peak), axis=axis, keepdims=True)) + peak
    return np.squeeze(out, axis=axis)


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Overflow-safe logistic function ``1 / (1 + exp(-z))``."""
    z = np.asarray(z, dtype=np.float64)
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    expz = np.exp(z[~pos])
    out[~pos] = expz / (1.0 + expz)
    return out


def pairwise_sq_euclidean(A: np.ndarray, B: np.ndarray = None) -> np.ndarray:
    """All-pairs squared Euclidean distances.

    Parameters
    ----------
    A: array of shape (m, n)
    B: array of shape (k, n); defaults to ``A``.

    Returns
    -------
    (m, k) matrix ``D`` with ``D[i, j] = ||A[i] - B[j]||^2``, clipped at
    zero to absorb floating-point cancellation.
    """
    A = np.asarray(A, dtype=np.float64)
    B = A if B is None else np.asarray(B, dtype=np.float64)
    aa = np.sum(A * A, axis=1)[:, None]
    bb = np.sum(B * B, axis=1)[None, :]
    D = aa + bb - 2.0 * (A @ B.T)
    np.maximum(D, 0.0, out=D)
    return D


def weighted_minkowski_to_prototypes(
    X: np.ndarray,
    V: np.ndarray,
    alpha: np.ndarray,
    p: float = 2.0,
    root: bool = False,
) -> np.ndarray:
    """Weighted Minkowski distances between records and prototypes.

    Computes ``d[i, k] = sum_n alpha[n] * |X[i, n] - V[k, n]|**p``
    (optionally raised to ``1/p`` when ``root`` is true), which is the
    distance of Definition 7 in the paper.

    Shapes: ``X`` is (m, n), ``V`` is (k, n), ``alpha`` is (n,).
    Returns (m, k).
    """
    X = np.asarray(X, dtype=np.float64)
    V = np.asarray(V, dtype=np.float64)
    alpha = np.asarray(alpha, dtype=np.float64)
    if p == 2.0:
        # Expanded-square kernel: no (m, k, n) tensor, and row-stable,
        # so chunked evaluation stays bitwise equal to one-shot.
        d = weighted_sq_dists_rowstable(X, V, alpha)
    else:
        diff = X[:, None, :] - V[None, :, :]
        d = np.abs(diff) ** p @ alpha
        np.maximum(d, 0.0, out=d)
    if root:
        d = d ** (1.0 / p)
    return d


def harmonic_mean(a: float, b: float) -> float:
    """Harmonic mean of two non-negative scores; 0 if either is 0."""
    if a <= 0.0 or b <= 0.0:
        return 0.0
    return 2.0 * a * b / (a + b)
