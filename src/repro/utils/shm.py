"""Zero-copy broadcast of numpy arrays to worker processes.

Process-parallel tuning (:mod:`repro.core.executor`) fans hundreds of
candidate fits over a worker pool.  Pickling the training/validation
matrices into every task would copy a 20k x N dataset once per grid
point; instead the parent publishes each array once into a POSIX
shared-memory segment (:mod:`multiprocessing.shared_memory`) and
workers map the same pages read-only.

:class:`SharedArrays` owns the parent side (create, unlink), and
:func:`attach` opens the worker side from the picklable
:class:`SharedArrayHandle` descriptors.  Both ends are context
managers so segments are released even when a fit raises — leaked
``/dev/shm`` entries are a test-enforced bug
(``tests/unit/test_shm.py``).

On top of the one-owner primitives sits the **arena**
(:class:`ShmArena`, reachable through the process-wide :func:`arena`
singleton): a content-addressed, reference-counted cache of published
arrays used by session worker pools.  Publishing the same bytes twice
— a training matrix broadcast for tuning and again for the subsequent
refit — returns the *existing* segment instead of re-copying it, and
releasing a lease keeps the segment cached (warm) until the cache is
reaped with the idle session pools or cleared at interpreter exit.
"""

from __future__ import annotations

import atexit
import hashlib
import itertools
import os
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.telemetry.metrics import get_registry
from repro.telemetry.tracing import get_tracer

#: Prefix of every segment this module creates; tests sweep
#: ``/dev/shm`` for it to prove nothing leaks.
SEGMENT_PREFIX = "repro_shm_"

# pid + a process-local counter makes names unique: only the creating
# process mints them, and concurrent parents differ in pid.
_SEGMENT_COUNTER = itertools.count()


@dataclass(frozen=True)
class SharedArrayHandle:
    """Picklable descriptor of one shared array (name, layout)."""

    name: str
    shape: Tuple[int, ...]
    dtype: str


class AttachedArrays:
    """Worker-side view of a :class:`SharedArrays` broadcast.

    Maps every segment named by ``handles`` and exposes read-only
    ndarray views under the original keys.  ``close()`` (or the
    context manager) drops the mappings; the parent keeps the unlink
    responsibility.
    """

    def __init__(self, handles: Mapping[str, SharedArrayHandle]):
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self.arrays: Dict[str, np.ndarray] = {}
        try:
            for key, handle in handles.items():
                # Workers share the parent's resource-tracker process
                # (the fd rides along under both fork and spawn), and
                # its registration cache is a per-name set — attaching
                # here neither duplicates the entry nor takes over the
                # unlink duty, which stays with the creating parent.
                shm = shared_memory.SharedMemory(name=handle.name)
                self._segments[key] = shm
                view = np.ndarray(
                    handle.shape, dtype=np.dtype(handle.dtype), buffer=shm.buf
                )
                view.flags.writeable = False
                self.arrays[key] = view
        except BaseException:
            self.close()
            raise

    def close(self) -> None:
        """Drop every mapping (views become invalid)."""
        self.arrays = {}
        for shm in self._segments.values():
            try:
                shm.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        self._segments = {}

    def __enter__(self) -> "AttachedArrays":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def attach(handles: Mapping[str, SharedArrayHandle]) -> AttachedArrays:
    """Open the worker-side view of a broadcast (see ``SharedArrays``)."""
    return AttachedArrays(handles)


class SharedArrays:
    """Parent-side owner of a set of shared-memory array segments.

    Parameters
    ----------
    arrays:
        Mapping of key -> ndarray.  Each array is copied once into a
        fresh segment (C-contiguous); workers then attach by name with
        no further copies or pickling.

    Use as a context manager (or call :meth:`unlink`) so the segments
    are removed from ``/dev/shm`` even when the parallel section
    raises.
    """

    def __init__(self, arrays: Mapping[str, np.ndarray]):
        if not arrays:
            raise ValidationError("SharedArrays needs at least one array")
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._handles: Dict[str, SharedArrayHandle] = {}
        self.arrays: Dict[str, np.ndarray] = {}
        registry = get_registry()
        try:
            with get_tracer().span("shm.broadcast", n_arrays=len(arrays)):
                self._create(arrays, registry)
        except BaseException:
            self.unlink()
            raise

    def _create(self, arrays: Mapping[str, np.ndarray], registry) -> None:
        for key, array in arrays.items():
            array = np.ascontiguousarray(array)
            if array.size == 0:
                raise ValidationError(f"shared array {key!r} must not be empty")
            shm = shared_memory.SharedMemory(
                create=True,
                size=array.nbytes,
                name=f"{SEGMENT_PREFIX}{os.getpid()}_{next(_SEGMENT_COUNTER)}",
            )
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
            view[...] = array
            view.flags.writeable = False
            self._segments[key] = shm
            self._handles[key] = SharedArrayHandle(
                name=shm.name, shape=tuple(array.shape), dtype=array.dtype.str
            )
            self.arrays[key] = view
            registry.counter("shm_broadcast_segments_total").inc()
            registry.counter("shm_broadcast_bytes_total").inc(array.nbytes)

    @property
    def handles(self) -> Dict[str, SharedArrayHandle]:
        """Picklable descriptors for :func:`attach` in workers."""
        return dict(self._handles)

    def unlink(self) -> None:
        """Close the mappings and remove the segments from the system."""
        self.arrays = {}
        self._handles = {}
        for shm in self._segments.values():
            try:
                shm.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments = {}

    def __enter__(self) -> "SharedArrays":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink()


@dataclass
class _ArenaEntry:
    """One cached broadcast array (segment + refcount)."""

    segment: shared_memory.SharedMemory
    handle: SharedArrayHandle
    refs: int = 0


class ArenaLease:
    """A reference-counted borrow of arena segments (release once).

    ``handles`` maps the caller's array keys to picklable
    :class:`SharedArrayHandle` descriptors, exactly like
    ``SharedArrays.handles`` — executors ship them to workers
    unchanged.  Releasing does **not** unlink: the segments stay
    cached so the next publisher of the same bytes gets a warm hit.
    """

    def __init__(
        self,
        owner: "ShmArena",
        digests: List[str],
        handles: Dict[str, SharedArrayHandle],
    ):
        self._owner = owner
        self._digests = digests
        self.handles = handles
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._owner._release(self._digests)


def _array_digest(array: np.ndarray) -> str:
    """Content address of one C-contiguous array (bytes + layout)."""
    digest = hashlib.sha1()
    digest.update(str(array.shape).encode())
    digest.update(array.dtype.str.encode())
    digest.update(array.data)
    return digest.hexdigest()


class ShmArena:
    """Content-addressed, refcounted cache of shared-array broadcasts.

    The session-pool counterpart of :class:`SharedArrays`: callers
    :meth:`publish` a mapping of arrays and get an :class:`ArenaLease`
    whose handles workers attach to.  Arrays are keyed by a digest of
    their bytes, so publishing the same matrix twice (tuning, then the
    refit of the winner) costs one hash instead of a second copy.
    Releasing a lease decrements refcounts but keeps segments cached;
    :meth:`reap` unlinks the refcount-free ones (the broker calls it
    when the last session pool idles out) and :meth:`clear` unlinks
    everything (atexit, tests).  Fork-inherited state is forgotten in
    children — the parent keeps the unlink duty.
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._entries: Dict[str, _ArenaEntry] = {}
        self._pid = os.getpid()
        self.hits = 0
        self.misses = 0

    def publish(self, arrays: Mapping[str, np.ndarray]) -> ArenaLease:
        """Lease segments for ``arrays``, reusing cached identical bytes."""
        if not arrays:
            raise ValidationError("ShmArena.publish needs at least one array")
        registry = get_registry()
        with self._lock, get_tracer().span(
            "shm.arena_publish", n_arrays=len(arrays)
        ):
            self._check_fork()
            digests: List[str] = []
            handles: Dict[str, SharedArrayHandle] = {}
            for key, array in arrays.items():
                array = np.ascontiguousarray(array)
                if array.size == 0:
                    raise ValidationError(f"shared array {key!r} must not be empty")
                digest = _array_digest(array)
                entry = self._entries.get(digest)
                if entry is None:
                    self.misses += 1
                    registry.counter("shm_arena_misses_total").inc()
                    registry.counter("shm_broadcast_bytes_total").inc(
                        array.nbytes
                    )
                    segment = shared_memory.SharedMemory(
                        create=True,
                        size=array.nbytes,
                        name=(
                            f"{SEGMENT_PREFIX}{os.getpid()}_"
                            f"{next(_SEGMENT_COUNTER)}"
                        ),
                    )
                    view = np.ndarray(
                        array.shape, dtype=array.dtype, buffer=segment.buf
                    )
                    view[...] = array
                    entry = _ArenaEntry(
                        segment=segment,
                        handle=SharedArrayHandle(
                            name=segment.name,
                            shape=tuple(array.shape),
                            dtype=array.dtype.str,
                        ),
                    )
                    self._entries[digest] = entry
                else:
                    self.hits += 1
                    registry.counter("shm_arena_hits_total").inc()
                entry.refs += 1
                digests.append(digest)
                handles[key] = entry.handle
            return ArenaLease(self, digests, handles)

    def _release(self, digests: List[str]) -> None:
        with self._lock:
            for digest in digests:
                entry = self._entries.get(digest)
                if entry is not None and entry.refs > 0:
                    entry.refs -= 1

    def reap(self) -> int:
        """Unlink every refcount-free (cached-but-unleased) segment."""
        with self._lock:
            idle = [d for d, e in self._entries.items() if e.refs <= 0]
            return sum(self._unlink(digest) for digest in idle)

    def clear(self) -> int:
        """Unlink every segment, leased or not (atexit / test teardown)."""
        with self._lock:
            return sum(self._unlink(d) for d in list(self._entries))

    def _unlink(self, digest: str) -> int:
        entry = self._entries.pop(digest, None)
        if entry is None:  # pragma: no cover - caller holds the lock
            return 0
        try:
            entry.segment.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        try:
            entry.segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        return 1

    def stats(self) -> Dict[str, int]:
        """Cache diagnostics: entry count, hit/miss counters.

        The gauges mirror into the process-wide metrics registry
        (``shm_arena_entries``/``shm_arena_leased``); the hit/miss
        counters already live there as ``shm_arena_*_total``, updated
        at publish time.
        """
        with self._lock:
            stats = {
                "entries": len(self._entries),
                "leased": sum(1 for e in self._entries.values() if e.refs > 0),
                "hits": self.hits,
                "misses": self.misses,
                "bytes": sum(
                    e.segment.size for e in self._entries.values()
                ),
            }
        registry = get_registry()
        registry.gauge("shm_arena_entries").set(stats["entries"])
        registry.gauge("shm_arena_leased").set(stats["leased"])
        registry.gauge("shm_arena_bytes").set(stats["bytes"])
        return stats

    def _check_fork(self) -> None:
        # A forked child inherits the entry table but not the unlink
        # duty: dropping the dict keeps the parent's segments intact.
        if os.getpid() != self._pid:
            self._entries.clear()
            self._pid = os.getpid()


_ARENA: Optional[ShmArena] = None
_ARENA_LOCK = threading.Lock()


def arena() -> ShmArena:
    """The process-wide arena instance (created lazily)."""
    global _ARENA
    with _ARENA_LOCK:
        if _ARENA is None:
            _ARENA = ShmArena()
        return _ARENA


def _forget_arena_in_child() -> None:
    if _ARENA is not None:
        _ARENA._entries.clear()
        _ARENA._pid = os.getpid()


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX-only repo
    os.register_at_fork(after_in_child=_forget_arena_in_child)


@atexit.register
def _clear_arena_at_exit() -> None:  # pragma: no cover - interpreter exit
    if _ARENA is not None:
        _ARENA.clear()


def leaked_segments() -> list:
    """Names of live segments created by this module (diagnostics).

    Scans ``/dev/shm`` for :data:`SEGMENT_PREFIX`; returns ``[]`` on
    platforms without a visible tmpfs mount.
    """
    try:
        entries = os.listdir("/dev/shm")
    except OSError:  # pragma: no cover - non-Linux
        return []
    return sorted(name for name in entries if name.startswith(SEGMENT_PREFIX))
