"""Zero-copy broadcast of numpy arrays to worker processes.

Process-parallel tuning (:mod:`repro.core.executor`) fans hundreds of
candidate fits over a worker pool.  Pickling the training/validation
matrices into every task would copy a 20k x N dataset once per grid
point; instead the parent publishes each array once into a POSIX
shared-memory segment (:mod:`multiprocessing.shared_memory`) and
workers map the same pages read-only.

:class:`SharedArrays` owns the parent side (create, unlink), and
:func:`attach` opens the worker side from the picklable
:class:`SharedArrayHandle` descriptors.  Both ends are context
managers so segments are released even when a fit raises — leaked
``/dev/shm`` entries are a test-enforced bug
(``tests/unit/test_shm.py``).
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.exceptions import ValidationError

#: Prefix of every segment this module creates; tests sweep
#: ``/dev/shm`` for it to prove nothing leaks.
SEGMENT_PREFIX = "repro_shm_"

# pid + a process-local counter makes names unique: only the creating
# process mints them, and concurrent parents differ in pid.
_SEGMENT_COUNTER = itertools.count()


@dataclass(frozen=True)
class SharedArrayHandle:
    """Picklable descriptor of one shared array (name, layout)."""

    name: str
    shape: Tuple[int, ...]
    dtype: str


class AttachedArrays:
    """Worker-side view of a :class:`SharedArrays` broadcast.

    Maps every segment named by ``handles`` and exposes read-only
    ndarray views under the original keys.  ``close()`` (or the
    context manager) drops the mappings; the parent keeps the unlink
    responsibility.
    """

    def __init__(self, handles: Mapping[str, SharedArrayHandle]):
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self.arrays: Dict[str, np.ndarray] = {}
        try:
            for key, handle in handles.items():
                # Workers share the parent's resource-tracker process
                # (the fd rides along under both fork and spawn), and
                # its registration cache is a per-name set — attaching
                # here neither duplicates the entry nor takes over the
                # unlink duty, which stays with the creating parent.
                shm = shared_memory.SharedMemory(name=handle.name)
                self._segments[key] = shm
                view = np.ndarray(
                    handle.shape, dtype=np.dtype(handle.dtype), buffer=shm.buf
                )
                view.flags.writeable = False
                self.arrays[key] = view
        except BaseException:
            self.close()
            raise

    def close(self) -> None:
        """Drop every mapping (views become invalid)."""
        self.arrays = {}
        for shm in self._segments.values():
            try:
                shm.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        self._segments = {}

    def __enter__(self) -> "AttachedArrays":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def attach(handles: Mapping[str, SharedArrayHandle]) -> AttachedArrays:
    """Open the worker-side view of a broadcast (see ``SharedArrays``)."""
    return AttachedArrays(handles)


class SharedArrays:
    """Parent-side owner of a set of shared-memory array segments.

    Parameters
    ----------
    arrays:
        Mapping of key -> ndarray.  Each array is copied once into a
        fresh segment (C-contiguous); workers then attach by name with
        no further copies or pickling.

    Use as a context manager (or call :meth:`unlink`) so the segments
    are removed from ``/dev/shm`` even when the parallel section
    raises.
    """

    def __init__(self, arrays: Mapping[str, np.ndarray]):
        if not arrays:
            raise ValidationError("SharedArrays needs at least one array")
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._handles: Dict[str, SharedArrayHandle] = {}
        self.arrays: Dict[str, np.ndarray] = {}
        try:
            for key, array in arrays.items():
                array = np.ascontiguousarray(array)
                if array.size == 0:
                    raise ValidationError(f"shared array {key!r} must not be empty")
                shm = shared_memory.SharedMemory(
                    create=True,
                    size=array.nbytes,
                    name=f"{SEGMENT_PREFIX}{os.getpid()}_{next(_SEGMENT_COUNTER)}",
                )
                view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
                view[...] = array
                view.flags.writeable = False
                self._segments[key] = shm
                self._handles[key] = SharedArrayHandle(
                    name=shm.name, shape=tuple(array.shape), dtype=array.dtype.str
                )
                self.arrays[key] = view
        except BaseException:
            self.unlink()
            raise

    @property
    def handles(self) -> Dict[str, SharedArrayHandle]:
        """Picklable descriptors for :func:`attach` in workers."""
        return dict(self._handles)

    def unlink(self) -> None:
        """Close the mappings and remove the segments from the system."""
        self.arrays = {}
        self._handles = {}
        for shm in self._segments.values():
            try:
                shm.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments = {}

    def __enter__(self) -> "SharedArrays":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink()


def leaked_segments() -> list:
    """Names of live segments created by this module (diagnostics).

    Scans ``/dev/shm`` for :data:`SEGMENT_PREFIX`; returns ``[]`` on
    platforms without a visible tmpfs mount.
    """
    try:
        entries = os.listdir("/dev/shm")
    except OSError:  # pragma: no cover - non-Linux
        return []
    return sorted(name for name in entries if name.startswith(SEGMENT_PREFIX))
