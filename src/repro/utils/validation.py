"""Input validation helpers shared across the library.

These functions centralise the error messages and coercion rules so
models and metrics can assume clean ``float64`` arrays after a single
call.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.exceptions import ValidationError


def check_matrix(
    X,
    name: str = "X",
    *,
    min_rows: int = 1,
    min_cols: int = 1,
    allow_nan: bool = False,
) -> np.ndarray:
    """Coerce ``X`` to a 2-D float64 array and validate its shape.

    Raises :class:`ValidationError` for wrong dimensionality, empty
    axes, or non-finite entries (unless ``allow_nan``).
    """
    arr = np.asarray(X, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be 2-dimensional, got ndim={arr.ndim}")
    rows, cols = arr.shape
    if rows < min_rows:
        raise ValidationError(f"{name} needs at least {min_rows} row(s), got {rows}")
    if cols < min_cols:
        raise ValidationError(f"{name} needs at least {min_cols} column(s), got {cols}")
    if not allow_nan and not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains NaN or infinite values")
    return arr


def check_vector(
    y,
    name: str = "y",
    *,
    length: Optional[int] = None,
    allow_nan: bool = False,
) -> np.ndarray:
    """Coerce ``y`` to a 1-D float64 array, optionally enforcing length."""
    arr = np.asarray(y, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValidationError(f"{name} must not be empty")
    if length is not None and arr.size != length:
        raise ValidationError(f"{name} must have length {length}, got {arr.size}")
    if not allow_nan and not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains NaN or infinite values")
    return arr


def check_binary_labels(y, name: str = "y", *, length: Optional[int] = None) -> np.ndarray:
    """Validate that ``y`` holds only 0/1 labels; returns a float64 array."""
    arr = check_vector(y, name, length=length)
    values = np.unique(arr)
    if not np.all(np.isin(values, (0.0, 1.0))):
        raise ValidationError(f"{name} must contain only 0/1 labels, found values {values}")
    return arr


def check_protected_indices(
    protected: Optional[Iterable[int]], n_features: int
) -> np.ndarray:
    """Validate protected-attribute column indices against ``n_features``.

    ``None`` or an empty iterable means *no protected attributes*, which
    the paper explicitly allows (l = N).
    """
    if protected is None:
        return np.empty(0, dtype=np.intp)
    idx = np.asarray(list(protected), dtype=np.intp)
    if idx.size == 0:
        return np.empty(0, dtype=np.intp)
    if np.unique(idx).size != idx.size:
        raise ValidationError("protected indices contain duplicates")
    if idx.min() < 0 or idx.max() >= n_features:
        raise ValidationError(
            f"protected indices must lie in [0, {n_features - 1}], got {idx.tolist()}"
        )
    return np.sort(idx)


def nonprotected_indices(protected: np.ndarray, n_features: int) -> np.ndarray:
    """Complement of ``protected`` within ``range(n_features)``."""
    mask = np.ones(n_features, dtype=bool)
    mask[protected] = False
    return np.flatnonzero(mask)
