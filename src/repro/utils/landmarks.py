"""Landmark (anchor) selection for the large-M fairness oracle.

The landmark fairness oracle (:class:`repro.utils.kernels.LandmarkFairness`)
approximates the full ordered-pair loss through ``L`` anchor records.
Approximation quality hinges on the anchors covering the data's
geometry, so two classic coverage seedings are provided:

* ``"kmeans++"`` — D^2 sampling (Arthur & Vassilvitskii, 2007): each
  new anchor is drawn with probability proportional to its squared
  distance to the closest already-chosen anchor.  Stochastic but
  deterministic under the seed; spreads anchors density-proportionally.
* ``"farthest"`` — farthest-point traversal: each new anchor is the
  record farthest from the chosen set (ties break to the lowest
  index).  Deterministic after the seeded first pick; maximises
  coverage radius.

Both run in ``O(M * L * N)`` time and ``O(M)`` extra memory — no
pairwise matrix — and return **sorted, distinct** indices, so any two
selections of the same anchor set are interchangeable bitwise.  When
``n_landmarks == M`` every record is selected, which is what makes the
landmark oracle collapse exactly onto the full-pair loss at ``L = M``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import RandomStateLike, check_random_state

LANDMARK_METHODS = ("kmeans++", "farthest")


def _sq_dists_to(X: np.ndarray, row: np.ndarray) -> np.ndarray:
    """``||X[i] - row||^2`` for every record, clipped at zero."""
    diff = X - row[None, :]
    return np.einsum("mn,mn->m", diff, diff)


def select_landmarks(
    X: np.ndarray,
    n_landmarks: int,
    *,
    method: str = "kmeans++",
    random_state: RandomStateLike = 0,
) -> np.ndarray:
    """Choose ``n_landmarks`` distinct anchor row indices of ``X``.

    Parameters
    ----------
    X:
        Record matrix, shape (M, N) — typically the non-protected
        attribute columns the fairness target is built from.
    n_landmarks:
        Number of anchors L, ``1 <= L <= M``.
    method:
        ``"kmeans++"`` or ``"farthest"`` (see module docstring).
    random_state:
        Seeds the first pick and, for k-means++, the D^2 sampling.

    Returns
    -------
    Sorted ``int64`` array of L distinct row indices.  Duplicate
    records collapse the distance landscape to zero; remaining picks
    then fall back to the lowest unchosen indices so the result stays
    distinct and deterministic.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2 or X.shape[0] < 1:
        raise ValidationError("landmark selection needs a non-empty 2-D matrix")
    m = X.shape[0]
    n_landmarks = int(n_landmarks)
    if n_landmarks < 1:
        raise ValidationError("n_landmarks must be at least 1")
    if n_landmarks > m:
        raise ValidationError(
            f"n_landmarks must be <= number of records ({m}), got {n_landmarks}"
        )
    if method not in LANDMARK_METHODS:
        raise ValidationError(
            f"landmark method must be one of {LANDMARK_METHODS}, got {method!r}"
        )
    rng = check_random_state(random_state)

    chosen = np.empty(n_landmarks, dtype=np.int64)
    taken = np.zeros(m, dtype=bool)
    first = int(rng.integers(m))
    chosen[0] = first
    taken[first] = True
    # Squared distance of every record to its nearest chosen anchor.
    d2 = _sq_dists_to(X, X[first])
    for t in range(1, n_landmarks):
        total = float(d2.sum())
        if total > 0.0:
            if method == "kmeans++":
                nxt = int(rng.choice(m, p=d2 / total))
            else:
                nxt = int(np.argmax(d2))
        else:
            # All remaining records coincide with an anchor: keep the
            # selection distinct via the lowest unchosen index.
            nxt = int(np.flatnonzero(~taken)[0])
        chosen[t] = nxt
        taken[nxt] = True
        np.minimum(d2, _sq_dists_to(X, X[nxt]), out=d2)
        d2[nxt] = 0.0
    return np.sort(chosen)


def anchor_assignment_cost(X: np.ndarray, anchors: np.ndarray) -> float:
    """Mean distance of each record to its nearest anchor.

    The coverage statistic behind the online shift test: anchors chosen
    on the fit-time distribution cover it tightly, so the mean
    nearest-anchor distance of fresh traffic rising well above the
    fit-time value means the incoming records live where no anchor
    does — the landmark approximation (and the representation built on
    it) is being asked about a different distribution.

    O(M * L * N) time, O(M) extra memory — same budget as selection.
    """
    X = np.asarray(X, dtype=np.float64)
    anchors = np.atleast_2d(np.asarray(anchors, dtype=np.float64))
    if X.ndim != 2 or X.shape[0] < 1:
        raise ValidationError("assignment cost needs a non-empty 2-D matrix")
    if anchors.shape[0] < 1 or anchors.shape[1] != X.shape[1]:
        raise ValidationError(
            "anchors must be a non-empty (L, N) matrix matching X's width"
        )
    d2 = _sq_dists_to(X, anchors[0])
    for row in anchors[1:]:
        np.minimum(d2, _sq_dists_to(X, row), out=d2)
    return float(np.sqrt(np.clip(d2, 0.0, None)).mean())


@dataclass(frozen=True)
class LandmarkRefresh:
    """Outcome of one :func:`refresh_landmarks` decision.

    Attributes
    ----------
    refreshed:
        Whether new anchors were selected over the window.
    indices:
        Sorted anchor row indices **into the window** when refreshed,
        else ``None``.
    anchors:
        Anchor coordinates — freshly selected rows of the window when
        refreshed, otherwise the anchors that were passed in.
    cost:
        Mean nearest-anchor distance of the window under the *incoming*
        anchors (the shift numerator).
    baseline_cost:
        The fit-time (or first-window) reference cost the ratio is
        taken against.
    shift:
        ``cost / baseline_cost`` — 1.0 means the window is covered as
        tightly as the baseline was; values above ``shift_threshold``
        triggered the refresh.
    """

    refreshed: bool
    indices: Optional[np.ndarray]
    anchors: np.ndarray
    cost: float
    baseline_cost: float
    shift: float


def refresh_landmarks(
    window: np.ndarray,
    anchors: Optional[np.ndarray] = None,
    *,
    n_landmarks: int,
    method: str = "kmeans++",
    random_state: RandomStateLike = 0,
    baseline_cost: Optional[float] = None,
    shift_threshold: float = 1.25,
    force: bool = False,
) -> LandmarkRefresh:
    """Re-anchor over a sliding window when the distribution shifted.

    Computes the anchor-assignment cost of ``window`` under the current
    ``anchors``, takes its ratio against ``baseline_cost`` (the cost at
    fit time, or of the first window — any reference captured while
    the anchors still matched the data), and re-runs
    :func:`select_landmarks` over the window iff the ratio exceeds
    ``shift_threshold`` (or ``force`` is set, or no anchors exist yet).

    Cheap by construction: the non-refresh path is one O(M * L * N)
    distance sweep, so callers can evaluate it every control tick and
    only pay the selection when re-anchoring is actually warranted.
    """
    window = np.asarray(window, dtype=np.float64)
    if window.ndim != 2 or window.shape[0] < 1:
        raise ValidationError("landmark refresh needs a non-empty 2-D window")
    if shift_threshold <= 0:
        raise ValidationError("shift_threshold must be positive")
    n_landmarks = min(int(n_landmarks), window.shape[0])
    if anchors is None:
        # Nothing to compare against: bootstrap anchors from the window
        # and report the post-selection cost as its own baseline.
        indices = select_landmarks(
            window, n_landmarks, method=method, random_state=random_state
        )
        selected = window[indices]
        cost = anchor_assignment_cost(window, selected)
        base = cost if baseline_cost is None else float(baseline_cost)
        return LandmarkRefresh(
            refreshed=True,
            indices=indices,
            anchors=selected,
            cost=cost,
            baseline_cost=base,
            shift=1.0 if base == 0.0 else cost / base,
        )
    anchors = np.atleast_2d(np.asarray(anchors, dtype=np.float64))
    cost = anchor_assignment_cost(window, anchors)
    if baseline_cost is None or float(baseline_cost) <= 0.0:
        # Degenerate reference (identical records, or none captured):
        # treat the current cost as the baseline rather than dividing
        # by zero — shift is then exactly 1.0 and never flaps.
        baseline = cost if cost > 0.0 else 1.0
    else:
        baseline = float(baseline_cost)
    shift = cost / baseline if baseline > 0.0 else 1.0
    if not force and shift <= float(shift_threshold):
        return LandmarkRefresh(
            refreshed=False,
            indices=None,
            anchors=anchors,
            cost=cost,
            baseline_cost=baseline,
            shift=shift,
        )
    indices = select_landmarks(
        window, n_landmarks, method=method, random_state=random_state
    )
    return LandmarkRefresh(
        refreshed=True,
        indices=indices,
        anchors=window[indices],
        cost=cost,
        baseline_cost=baseline,
        shift=shift,
    )
