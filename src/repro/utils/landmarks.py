"""Landmark (anchor) selection for the large-M fairness oracle.

The landmark fairness oracle (:class:`repro.utils.kernels.LandmarkFairness`)
approximates the full ordered-pair loss through ``L`` anchor records.
Approximation quality hinges on the anchors covering the data's
geometry, so two classic coverage seedings are provided:

* ``"kmeans++"`` — D^2 sampling (Arthur & Vassilvitskii, 2007): each
  new anchor is drawn with probability proportional to its squared
  distance to the closest already-chosen anchor.  Stochastic but
  deterministic under the seed; spreads anchors density-proportionally.
* ``"farthest"`` — farthest-point traversal: each new anchor is the
  record farthest from the chosen set (ties break to the lowest
  index).  Deterministic after the seeded first pick; maximises
  coverage radius.

Both run in ``O(M * L * N)`` time and ``O(M)`` extra memory — no
pairwise matrix — and return **sorted, distinct** indices, so any two
selections of the same anchor set are interchangeable bitwise.  When
``n_landmarks == M`` every record is selected, which is what makes the
landmark oracle collapse exactly onto the full-pair loss at ``L = M``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import RandomStateLike, check_random_state

LANDMARK_METHODS = ("kmeans++", "farthest")


def _sq_dists_to(X: np.ndarray, row: np.ndarray) -> np.ndarray:
    """``||X[i] - row||^2`` for every record, clipped at zero."""
    diff = X - row[None, :]
    return np.einsum("mn,mn->m", diff, diff)


def select_landmarks(
    X: np.ndarray,
    n_landmarks: int,
    *,
    method: str = "kmeans++",
    random_state: RandomStateLike = 0,
) -> np.ndarray:
    """Choose ``n_landmarks`` distinct anchor row indices of ``X``.

    Parameters
    ----------
    X:
        Record matrix, shape (M, N) — typically the non-protected
        attribute columns the fairness target is built from.
    n_landmarks:
        Number of anchors L, ``1 <= L <= M``.
    method:
        ``"kmeans++"`` or ``"farthest"`` (see module docstring).
    random_state:
        Seeds the first pick and, for k-means++, the D^2 sampling.

    Returns
    -------
    Sorted ``int64`` array of L distinct row indices.  Duplicate
    records collapse the distance landscape to zero; remaining picks
    then fall back to the lowest unchosen indices so the result stays
    distinct and deterministic.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2 or X.shape[0] < 1:
        raise ValidationError("landmark selection needs a non-empty 2-D matrix")
    m = X.shape[0]
    n_landmarks = int(n_landmarks)
    if n_landmarks < 1:
        raise ValidationError("n_landmarks must be at least 1")
    if n_landmarks > m:
        raise ValidationError(
            f"n_landmarks must be <= number of records ({m}), got {n_landmarks}"
        )
    if method not in LANDMARK_METHODS:
        raise ValidationError(
            f"landmark method must be one of {LANDMARK_METHODS}, got {method!r}"
        )
    rng = check_random_state(random_state)

    chosen = np.empty(n_landmarks, dtype=np.int64)
    taken = np.zeros(m, dtype=bool)
    first = int(rng.integers(m))
    chosen[0] = first
    taken[first] = True
    # Squared distance of every record to its nearest chosen anchor.
    d2 = _sq_dists_to(X, X[first])
    for t in range(1, n_landmarks):
        total = float(d2.sum())
        if total > 0.0:
            if method == "kmeans++":
                nxt = int(rng.choice(m, p=d2 / total))
            else:
                nxt = int(np.argmax(d2))
        else:
            # All remaining records coincide with an anchor: keep the
            # selection distinct via the lowest unchosen index.
            nxt = int(np.flatnonzero(~taken)[0])
        chosen[t] = nxt
        taken[nxt] = True
        np.minimum(d2, _sq_dists_to(X, X[nxt]), out=d2)
        d2[nxt] = 0.0
    return np.sort(chosen)
