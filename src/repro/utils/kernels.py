r"""GEMM-based fast kernels for the softmax-clustering hot path.

Both the iFair objective (:mod:`repro.core.objective`) and the LFR
baseline spend almost all of their time evaluating the weighted squared
distance matrix ``d[i, k] = sum_n alpha_n (x_in - v_kn)^2`` and its
gradients.  The naive implementation materialises an ``(M, K, N)``
difference tensor; the kernels here expand the square so every heavy
operation is a BLAS-3 matrix product over ``(M, N)`` / ``(K, N)``
operands and no 3-D tensor is ever allocated.

Forward expansion
-----------------

.. math::

    d_{ik} = \sum_n \alpha_n (x_{in} - v_{kn})^2
           = (X^{\circ 2} \alpha)_i
             - 2\,\bigl(X (\alpha \circ V)^T\bigr)_{ik}
             + (V^{\circ 2} \alpha)_k

where :math:`X^{\circ 2}` is the elementwise square.  One ``(M, K)``
GEMM plus two matrix-vector products; peak extra memory is
``O(M*K + K*N)``.

Backward expansion
------------------

With ``P = dL/d(-d)`` (the softmax-Jacobian product, shape ``(M, K)``):

.. math::

    \frac{\partial L}{\partial v_{kn}}\Big|_{dist}
        &= 2 \alpha_n \sum_m P_{mk} (x_{mn} - v_{kn})
         = 2 \alpha_n \bigl[(P^T X)_{kn} - \mathrm{colsum}(P)_k v_{kn}\bigr] \\
    \frac{\partial L}{\partial \alpha_n}
        &= -\sum_{mk} P_{mk} (x_{mn} - v_{kn})^2
         = -\bigl[\mathrm{rowsum}(P)^T X^{\circ 2}
                  - 2 \textstyle\sum_k (P^T X \circ V)_{kn}
                  + \mathrm{colsum}(P)^T V^{\circ 2}\bigr]_n

so the whole backward pass shares a single ``(K, N)`` GEMM
(:math:`P^T X`).

Two forward variants are exposed:

* :func:`weighted_sq_dists_gemm` — the fastest form (BLAS GEMM).  BLAS
  may pick different kernels for different batch heights (e.g. a GEMV
  path for a single row), so results are *not* guaranteed bitwise
  identical across row-chunked evaluation.  Use it inside optimisers,
  where only numerical accuracy matters.
* :func:`weighted_sq_dists_rowstable` — the same expansion through
  ``np.einsum`` scalar loops.  Each output row is computed
  independently of the batch height, so chunked evaluation is bitwise
  identical to one-shot evaluation.  Use it on inference paths with
  exact-chunking guarantees (``IFair.memberships(batch_size=...)``,
  serving).

Two further kernels cover the fairness term of the iFair objective:

* :class:`FullPairFairness` — the full ordered-pair loss
  :math:`\sum_{ij} (\tilde D_{ij} - D^*_{ij})^2` and its gradient in
  **moment form**: expanding :math:`\tilde D_{ij} = a_i + a_j -
  2 \langle \tilde x_i, \tilde x_j \rangle` collapses every pair sum
  into Gram-matrix contractions, so one oracle call costs
  ``O(M * N^2)`` instead of the ``O(M^2 * N)`` of materialising the
  ``(M, M)`` distance matrices.
* :class:`PairScatter` — the sampled-pair gather/scatter
  (``X[ii] - X[jj]`` and its signed transpose accumulation) as one
  precomputed sparse incidence operator, replacing the order-of-
  magnitude-slower ``np.add.at``.

A third fairness oracle removes the remaining ``O(M^2)`` corners for
very large ``M``:

* :class:`LandmarkFairness` — the landmark (Nystrom-style) pair loss
  :math:`\sum_{i,l} (\tilde D_{i a_l} - D^*_{i a_l})^2` over ``L``
  anchor records, evaluated in row blocks so one oracle call costs
  ``O(M * L * N)`` time and ``O(B * L)`` transient memory; no
  ``(M, M)`` matrix exists anywhere.  Unlike the moment form it
  computes each error entry *directly*, so it keeps full relative
  accuracy when a fit drives :math:`\tilde D \to D^*` (the ROADMAP
  significance watch-item), and its cross-block loss accumulation runs
  through :class:`CompensatedSum` (Neumaier compensated summation).

For generic Minkowski ``p`` (where no GEMM expansion exists) the
blocked kernels :func:`minkowski_dists_blocked` /
:func:`minkowski_backward_blocked` evaluate the record-prototype
distance tensor in row blocks, capping the transient ``(B, K, N)``
allocation at a fixed budget instead of materialising ``(M, K, N)``.

Everything here is thread-safe; :class:`Workspace` hands out
*thread-local* reusable buffers so parallel restarts can share one
objective without data races.
"""

from __future__ import annotations

import threading
from typing import Optional, Tuple

import numpy as np
from scipy import sparse

__all__ = [
    "Workspace",
    "CompensatedSum",
    "neumaier_tree_reduce",
    "weighted_sq_dists_gemm",
    "weighted_sq_dists_rowstable",
    "softmax_neg_inplace",
    "sq_dist_backward",
    "minkowski_dists_blocked",
    "minkowski_backward_blocked",
    "PairScatter",
    "FullPairFairness",
    "LandmarkFairness",
]


class Workspace:
    """Named pool of reusable numpy buffers, one pool per thread.

    L-BFGS evaluates the objective hundreds of times with identically
    shaped intermediates; re-allocating them every call is pure
    allocator churn.  ``take(name, shape)`` returns an uninitialised
    buffer that is reused on the next call with the same name and
    shape (and transparently re-allocated when shapes change, e.g.
    after refitting with different K).

    Buffers live in ``threading.local`` storage so concurrent callers
    (parallel restarts sharing one objective) never hand each other
    the same memory.
    """

    def __init__(self):
        self._local = threading.local()

    def take(self, name: str, shape: Tuple[int, ...]) -> np.ndarray:
        pool = getattr(self._local, "pool", None)
        if pool is None:
            pool = {}
            self._local.pool = pool
        buf = pool.get(name)
        if buf is None or buf.shape != shape:
            buf = np.empty(shape, dtype=np.float64)
            pool[name] = buf
        return buf


def weighted_sq_dists_gemm(
    X: np.ndarray,
    V: np.ndarray,
    alpha: np.ndarray,
    *,
    x_sq: Optional[np.ndarray] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``d[i, k] = sum_n alpha_n (X[i, n] - V[k, n])^2`` via GEMM.

    Parameters
    ----------
    X, V, alpha:
        Records ``(M, N)``, prototypes ``(K, N)``, weights ``(N,)``.
    x_sq:
        Optional precomputed ``X * X`` — pass it when ``X`` is fixed
        across many calls (training) to skip the elementwise square.
    out:
        Optional ``(M, K)`` output buffer (e.g. from a workspace).

    The expansion can produce tiny negative values through floating-
    point cancellation; the result is clipped at zero to stay in the
    distance domain.
    """
    if x_sq is None:
        x_sq = X * X
    if out is None:
        out = np.empty((X.shape[0], V.shape[0]), dtype=np.float64)
    np.matmul(X, (alpha * V).T, out=out)
    out *= -2.0
    out += (x_sq @ alpha)[:, None]
    out += ((V * V) @ alpha)[None, :]
    np.maximum(out, 0.0, out=out)
    return out


# Below this many prototype-matrix entries (K * N) the per-row tensor
# cost is smaller than the fixed einsum dispatch overhead (~10 us),
# which dominates single-record serving latency.
_ROWSTABLE_EINSUM_THRESHOLD = 192


def weighted_sq_dists_rowstable(
    X: np.ndarray,
    V: np.ndarray,
    alpha: np.ndarray,
    *,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Row-stable variant of :func:`weighted_sq_dists_gemm`.

    Same expansion, but the ``(M, K)`` and ``(M,)`` contractions go
    through ``np.einsum`` scalar loops whose per-row accumulation
    order does not depend on the number of rows in the batch.  Hence
    evaluating row blocks of any size (including single rows) is
    bitwise identical to evaluating all rows at once — the guarantee
    the chunked inference paths advertise.

    Small prototype matrices (``K * N`` below ~200 entries) instead
    use the difference-tensor form, also row-stable but free of the
    einsum fixed dispatch cost that would dominate single-record
    latency.  The branch depends only on the model's dimensions —
    never on the batch height — so any chunking of the same model
    stays on one branch and bitwise consistency holds.
    """
    if V.shape[0] * V.shape[1] <= _ROWSTABLE_EINSUM_THRESHOLD:
        diff = X[:, None, :] - V[None, :, :]
        d = (diff * diff) @ alpha  # stack of per-row matvecs
        if out is None:
            out = d
        else:
            out[...] = d
        np.maximum(out, 0.0, out=out)
        return out
    if out is None:
        out = np.empty((X.shape[0], V.shape[0]), dtype=np.float64)
    np.einsum("mn,kn->mk", X, alpha * V, out=out)
    out *= -2.0
    out += np.einsum("mn,mn,n->m", X, X, alpha)[:, None]
    out += ((V * V) @ alpha)[None, :]
    np.maximum(out, 0.0, out=out)
    return out


def softmax_neg_inplace(d: np.ndarray) -> np.ndarray:
    """``softmax(-d, axis=1)`` computed in-place in ``d``'s buffer.

    Performs the exact operation sequence of
    :func:`repro.utils.mathkit.softmax` (shift by the row maximum,
    exponentiate, normalise) so results match it bitwise, without
    allocating beyond one ``(M, 1)`` reduction per step.
    """
    np.negative(d, out=d)
    d -= np.max(d, axis=1, keepdims=True)
    np.exp(d, out=d)
    d /= np.sum(d, axis=1, keepdims=True)
    return d


def sq_dist_backward(
    P: np.ndarray,
    X: np.ndarray,
    V: np.ndarray,
    alpha: np.ndarray,
    *,
    x_sq: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Gradients through ``d`` for ``p = 2``, in GEMM form.

    Given ``P = dL/d(-d)`` of shape ``(M, K)``, returns

    * ``grad_alpha_dist[n] = -sum_{mk} P[m, k] (X[m, n] - V[k, n])^2``
    * ``grad_V_dist[k, n] = 2 alpha[n] sum_m P[m, k] (X[m, n] - V[k, n])``

    i.e. exactly the ``-einsum("mk,mkn->n", P, powed)`` and
    ``p * alpha * einsum("mk,mkn->kn", P, deriv)`` terms of the
    reference implementation, without the ``(M, K, N)`` tensors.  The
    only heavy operation is the shared ``(K, N)`` product ``P.T @ X``.
    """
    if x_sq is None:
        x_sq = X * X
    PtX = P.T @ X  # (K, N) — shared by both gradients
    p_row = P.sum(axis=1)  # (M,)
    p_col = P.sum(axis=0)  # (K,)
    grad_alpha = -(p_row @ x_sq - 2.0 * np.einsum("kn,kn->n", PtX, V) + p_col @ (V * V))
    grad_V = PtX - p_col[:, None] * V
    grad_V *= 2.0 * alpha
    return grad_alpha, grad_V


class PairScatter:
    """Sampled-pair gather/scatter as a precomputed sparse operator.

    For fixed pair index vectors ``ii``/``jj`` (they never change over
    an objective's lifetime) the signed incidence matrix
    ``A[p, ii[p]] = +1, A[p, jj[p]] = -1`` turns both hot sampled-pair
    operations into sparse matrix products:

    * ``diffs(X) = A @ X`` gives ``X[ii] - X[jj]`` (bitwise equal to
      the fancy-indexed subtraction);
    * ``scatter_add(G, C)`` performs ``G[ii] += C; G[jj] -= C`` as
      ``G += A.T @ C``.

    Both run through scipy's CSR kernels — several times faster than
    the generic ``np.add.at`` ufunc machinery (or a per-column
    ``np.bincount`` scatter) for the pair counts the fairness
    subsample uses.
    """

    def __init__(self, ii: np.ndarray, jj: np.ndarray, m: int):
        n_pairs = ii.size
        arange = np.arange(n_pairs)
        A = sparse.csr_matrix(
            (
                np.concatenate([np.ones(n_pairs), -np.ones(n_pairs)]),
                (np.concatenate([arange, arange]), np.concatenate([ii, jj])),
            ),
            shape=(n_pairs, m),
        )
        self._A = A
        self._At = sparse.csr_matrix(A.T)

    def diffs(self, X: np.ndarray) -> np.ndarray:
        """``X[ii] - X[jj]``, shape (n_pairs, N)."""
        return self._A @ X

    def scatter_add(self, G: np.ndarray, contrib: np.ndarray) -> np.ndarray:
        """``G[ii] += contrib; G[jj] -= contrib`` in place."""
        G += self._At @ contrib
        return G


def _frob_sq(A: np.ndarray) -> float:
    """Squared Frobenius norm ``sum(A * A)`` without a temporary."""
    return float(np.einsum("ij,ij->", A, A))


class FullPairFairness:
    r"""Moment-form loss/gradient of the full ordered-pair fairness term.

    The term is :math:`L = \sum_{ij} E_{ij}^2` with
    :math:`E = \tilde D - D^*`, where :math:`\tilde D` is the pairwise
    squared Euclidean matrix of the transformed records
    :math:`\tilde X` and :math:`D^*` the fixed one of the original
    non-protected attributes :math:`X^*`.  Substituting
    :math:`\tilde D_{ij} = a_i + a_j - 2 g_{ij}` (with
    :math:`a_i = \|\tilde x_i\|^2`, :math:`g = \tilde X \tilde X^T`)
    and likewise :math:`D^*_{ij} = s_i + s_j - 2 g^*_{ij}` reduces
    every pair sum to moments:

    .. math::

        \sum_{ij} \tilde D_{ij}^2 &= 2 M \|a\|^2 + 2 (\Sigma a)^2
            + 4 \|\tilde X^T \tilde X\|_F^2 - 8\, a^T \hat g, \\
        \sum_{ij} \tilde D_{ij} D^*_{ij} &= 2 M\, a^T s
            + 2 (\Sigma a)(\Sigma s) - 4\, a^T \hat g^*
            - 4\, s^T \hat g + 4 \|\tilde X^T X^*\|_F^2, \\
        \textstyle\sum_j E_{ij} &= M (a_i - s_i) + (\Sigma a - \Sigma s)
            - 2 (\hat g_i - \hat g^*_i), \\
        (E \tilde X)_{in} &= (a_i - s_i)\, c_n
            + \bigl((a - s)^T \tilde X\bigr)_n
            - 2 (\tilde X\, \tilde X^T \tilde X)_{in}
            + 2 \bigl(X^* (\tilde X^T X^*)^T\bigr)_{in},

    with :math:`\hat g = \tilde X (\tilde X^T \mathbf 1)`,
    :math:`\hat g^* = X^* (X^{*T} \mathbf 1)` and
    :math:`c = \tilde X^T \mathbf 1`.  Everything is ``O(M * N^2)``
    time and ``O(M * N)`` memory — the ``(M, M)`` matrices are never
    formed.  All :math:`X^*`-only moments are precomputed once.

    The expansion is exact algebra; floating-point-wise it loses
    significance only when :math:`\tilde D \to D^*` to many digits,
    which the utility term's low-rank reconstruction keeps far away
    in practice (the equivalence property tests pin the drift below
    ``1e-10`` relative).
    """

    def __init__(self, X_star: np.ndarray):
        X_star = np.ascontiguousarray(X_star, dtype=np.float64)
        self._Xs = X_star
        m = X_star.shape[0]
        self._m = m
        s = np.einsum("mn,mn->m", X_star, X_star)
        self._s = s
        self._s_sum = float(s.sum())
        self._gs_hat = X_star @ X_star.sum(axis=0)
        self._sum_ds_sq = (
            2.0 * m * float(s @ s)
            + 2.0 * self._s_sum**2
            + 4.0 * _frob_sq(X_star.T @ X_star)
            - 8.0 * float(s @ self._gs_hat)
        )
        self._ws = Workspace()

    def _moments(self, X_tilde: np.ndarray):
        aa = np.einsum("mn,mn->m", X_tilde, X_tilde)
        col = X_tilde.sum(axis=0)
        gram = X_tilde.T @ X_tilde
        g_hat = X_tilde @ col
        cross_gram = X_tilde.T @ self._Xs  # (N, N*)
        return aa, col, gram, g_hat, cross_gram

    def _loss_from_moments(self, aa, gram, g_hat, cross_gram) -> float:
        m = self._m
        a_sum = float(aa.sum())
        sum_dt_sq = (
            2.0 * m * float(aa @ aa)
            + 2.0 * a_sum**2
            + 4.0 * _frob_sq(gram)
            - 8.0 * float(aa @ g_hat)
        )
        sum_cross = (
            2.0 * m * float(aa @ self._s)
            + 2.0 * a_sum * self._s_sum
            - 4.0 * float(aa @ self._gs_hat)
            - 4.0 * float(self._s @ g_hat)
            + 4.0 * _frob_sq(cross_gram)
        )
        # Exactly >= 0 in real arithmetic; clip the rounding noise.
        return max(sum_dt_sq - 2.0 * sum_cross + self._sum_ds_sq, 0.0)

    def loss(self, X_tilde: np.ndarray) -> float:
        """``sum((D_tilde - D_star)**2)`` in O(M * N^2)."""
        aa, _, gram, g_hat, cross_gram = self._moments(X_tilde)
        return self._loss_from_moments(aa, gram, g_hat, cross_gram)

    def loss_row_grad(
        self, X_tilde: np.ndarray
    ) -> Tuple[float, np.ndarray, np.ndarray]:
        """(loss, row sums of E, E @ X_tilde) — the gradient inputs.

        ``E @ X_tilde`` is returned in a reusable thread-local buffer;
        consume it before the next call.
        """
        m, n = X_tilde.shape
        aa, col, gram, g_hat, cross_gram = self._moments(X_tilde)
        loss = self._loss_from_moments(aa, gram, g_hat, cross_gram)

        diff_sq = aa - self._s
        row = m * diff_sq + (float(aa.sum()) - self._s_sum)
        row -= 2.0 * g_hat
        row += 2.0 * self._gs_hat

        e_xt = np.multiply(diff_sq[:, None], col[None, :], out=self._ws.take("e_xt", (m, n)))
        e_xt += diff_sq @ X_tilde
        tmp = np.matmul(X_tilde, gram, out=self._ws.take("xt_gram", (m, n)))
        tmp *= 2.0
        e_xt -= tmp
        np.matmul(self._Xs, cross_gram.T, out=tmp)
        tmp *= 2.0
        e_xt += tmp
        return loss, row, e_xt


class CompensatedSum:
    """Neumaier compensated (Kahan-Babuska) scalar accumulator.

    Keeps a running correction term alongside the running total, so the
    accumulated rounding error stays ``O(eps)`` relative to the sum of
    absolute addends instead of growing with the number of additions.
    Used wherever a loss is assembled from many partial sums whose
    cancellation could otherwise eat significant digits (the ROADMAP
    watch-item on ``D_tilde -> D*``).
    """

    __slots__ = ("_total", "_compensation")

    def __init__(self, value: float = 0.0):
        self._total = float(value)
        self._compensation = 0.0

    def add(self, value: float) -> "CompensatedSum":
        """Accumulate one addend; returns ``self`` for chaining."""
        value = float(value)
        total = self._total + value
        if abs(self._total) >= abs(value):
            self._compensation += (self._total - total) + value
        else:
            self._compensation += (value - total) + self._total
        self._total = total
        return self

    @property
    def result(self) -> float:
        """The compensated total."""
        return self._total + self._compensation


def _neumaier_pair(
    s1: np.ndarray, c1: np.ndarray, s2: np.ndarray, c2: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Combine two compensated partial sums (Neumaier, elementwise)."""
    total = s1 + s2
    # The residual of the addition, recovered from whichever operand
    # dominates — the elementwise form of CompensatedSum.add.
    residual = np.where(
        np.abs(s1) >= np.abs(s2), (s1 - total) + s2, (s2 - total) + s1
    )
    return total, c1 + c2 + residual


def neumaier_tree_reduce(terms) -> np.ndarray:
    """Fixed-order compensated binary-tree sum of same-shaped arrays.

    Reduces ``terms`` (a non-empty sequence of arrays or scalars,
    broadcast to float64) pairwise in index order — ``(t0 + t1) +
    (t2 + t3)`` and so on — carrying an elementwise Neumaier
    compensation term through every node.  Two properties matter to
    the sharded oracle:

    * the error stays ``O(eps)`` regardless of how many partial sums
      are combined or how their magnitudes cancel;
    * the reduction tree depends only on ``len(terms)``, never on
      which worker produced which term or when it arrived — so a
      gradient reduced over shard results is bitwise identical at any
      ``n_jobs``.

    Returns a fresh array of the common shape (0-d for scalar input).
    """
    nodes = []
    for term in terms:
        total = np.asarray(term, dtype=np.float64)
        nodes.append((total, np.zeros_like(total)))
    if not nodes:
        raise ValueError("neumaier_tree_reduce needs at least one term")
    while len(nodes) > 1:
        merged = []
        for i in range(0, len(nodes) - 1, 2):
            s1, c1 = nodes[i]
            s2, c2 = nodes[i + 1]
            merged.append(_neumaier_pair(s1, c1, s2, c2))
        if len(nodes) % 2:
            merged.append(nodes[-1])
        nodes = merged
    total, compensation = nodes[0]
    return total + compensation


# Transient block buffers are capped at this many float64 elements
# (8 MB): large enough that BLAS runs at full tilt, small enough that
# blocked oracles never rival the arrays they are avoiding.
_BLOCK_ELEMENTS = 1 << 20


def _block_rows(m: int, row_cost: int) -> int:
    """Rows per block so one block holds ~``_BLOCK_ELEMENTS`` floats."""
    if row_cost <= 0:
        return m
    return max(1, min(m, _BLOCK_ELEMENTS // row_cost))


def minkowski_dists_blocked(
    X: np.ndarray,
    V: np.ndarray,
    alpha: np.ndarray,
    p: float,
    *,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``d[i, k] = sum_n alpha_n |X[i, n] - V[k, n]|^p`` in row blocks.

    Identical per-row arithmetic to the reference tensor form (each
    row's distances are an independent ``(K, N) @ (N,)`` contraction,
    so blocking cannot change results), but the transient difference
    tensor is ``(B, K, N)`` with ``B`` capped by the block budget —
    generic-``p`` oracles stop scaling their memory with ``M``.
    """
    m = X.shape[0]
    k, n = V.shape
    if out is None:
        out = np.empty((m, k), dtype=np.float64)
    block = _block_rows(m, k * n)
    for start in range(0, m, block):
        stop = min(start + block, m)
        diff = X[start:stop, None, :] - V[None, :, :]
        if p == 2.0:
            powed = diff * diff
        else:
            powed = np.abs(diff) ** p
        out[start:stop] = powed @ alpha
    return out


def minkowski_backward_blocked(
    P: np.ndarray,
    X: np.ndarray,
    V: np.ndarray,
    alpha: np.ndarray,
    p: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generic-``p`` analogue of :func:`sq_dist_backward`, row-blocked.

    Given ``P = dL/d(-d)`` of shape ``(M, K)``, returns

    * ``grad_alpha[n] = -sum_{mk} P[m, k] |X[m, n] - V[k, n]|^p``
    * ``grad_V[k, n] = p * alpha[n] * sum_m P[m, k] *
      sign(diff) |diff|^(p-1)``

    matching the reference einsum terms exactly, with the ``(B, K, N)``
    difference tensors bounded by the block budget.
    """
    m = X.shape[0]
    k, n = V.shape
    grad_alpha = np.zeros(n, dtype=np.float64)
    grad_V = np.zeros((k, n), dtype=np.float64)
    block = _block_rows(m, k * n)
    for start in range(0, m, block):
        stop = min(start + block, m)
        diff = X[start:stop, None, :] - V[None, :, :]
        if p == 2.0:
            powed = diff * diff
            deriv = diff
        else:
            absdiff = np.abs(diff)
            powed = absdiff ** p
            deriv = np.sign(diff) * absdiff ** (p - 1.0)
        Pb = P[start:stop]
        grad_alpha -= np.einsum("mk,mkn->n", Pb, powed)
        grad_V += np.einsum("mk,mkn->kn", Pb, deriv)
    grad_V *= p * alpha[None, :]
    return grad_alpha, grad_V


class LandmarkFairness:
    r"""Landmark (Nystrom-style) fairness loss/gradient, row-blocked.

    Approximates the full ordered-pair fairness term through ``L``
    anchor records ``a_1..a_L`` (row indices into the training matrix):

    .. math::

        L_{fair} = w \sum_{i=1}^{M} \sum_{l=1}^{L}
            \bigl(\tilde D_{i a_l} - D^*_{i a_l}\bigr)^2,

    where :math:`\tilde D_{i a_l} = \|\tilde x_i - \tilde x_{a_l}\|^2`,
    :math:`D^*` is the fixed squared-Euclidean target on the
    non-protected attributes, and ``w = scale`` (``M / L`` by
    convention) rescales the ``M * L`` pair sum to estimate the full
    ``M^2`` ordered-pair sum — so ``mu_fair`` keeps one meaning across
    pair modes, and at ``L = M`` (anchors = every record) the scaled
    loss *equals* the full-pair loss.

    The gradient w.r.t. :math:`\tilde X` carries both roles a record
    can play — row ``i`` of the pair sum and anchor ``a_l`` (anchors
    move with the transform):

    .. math::

        \frac{\partial L}{\partial \tilde x_i}
            &\mathrel{+}= 4 w \bigl(r_i \tilde x_i - (E A)_i\bigr), \\
        \frac{\partial L}{\partial \tilde x_{a_l}}
            &\mathrel{+}= -4 w \bigl((E^T \tilde X)_l - c_l a_l\bigr),

    with :math:`E = \tilde D_{:,anchors} - D^*` (shape ``(M, L)``),
    row sums :math:`r`, column sums :math:`c` and anchor matrix
    :math:`A = \tilde X[anchors]`.  At ``L = M`` the two terms merge
    into the familiar ``8 mu (r_i x_i - E x)`` of the symmetric full
    form.

    Everything is evaluated in row blocks of at most
    ``_BLOCK_ELEMENTS / L`` rows: one oracle call costs
    ``O(M * L * N)`` time and ``O(B * L)`` transient memory, never an
    ``(M, M)`` matrix.  Error entries are computed *directly*
    (``D_tilde - D*`` elementwise), so the near-cancellation regime
    ``D_tilde -> D*`` keeps full relative accuracy — unlike the moment
    expansion — and the cross-block loss accumulation is compensated
    (:class:`CompensatedSum`).

    Parameters
    ----------
    X_star:
        Non-protected attribute matrix, shape ``(M, N*)``.
    anchor_idx:
        Distinct row indices of the landmark anchors, shape ``(L,)``.
        Stored sorted, so any permutation of the same anchor set
        produces bitwise-identical results.
    scale:
        Loss multiplier ``w``; pass ``M / L`` for full-pair
        comparability (the default when ``None``).
    """

    def __init__(
        self,
        X_star: np.ndarray,
        anchor_idx: np.ndarray,
        *,
        scale: Optional[float] = None,
    ):
        X_star = np.ascontiguousarray(X_star, dtype=np.float64)
        anchor_idx = np.asarray(anchor_idx, dtype=np.int64).ravel()
        m = X_star.shape[0]
        if anchor_idx.size == 0:
            raise ValueError("landmark fairness needs at least one anchor")
        if anchor_idx.size != np.unique(anchor_idx).size:
            raise ValueError("landmark anchors must be distinct")
        if anchor_idx.min() < 0 or anchor_idx.max() >= m:
            raise ValueError("landmark anchor index out of range")
        self._idx = np.sort(anchor_idx)
        self._m = m
        self.scale = float(m / self._idx.size) if scale is None else float(scale)
        # Fixed (M, L) target: squared Euclidean on the non-protected
        # attributes between every record and every anchor.
        A_star = X_star[self._idx]
        aa = np.einsum("mn,mn->m", X_star, X_star)
        d_star = aa[:, None] + aa[self._idx][None, :]
        d_star -= 2.0 * (X_star @ A_star.T)
        np.maximum(d_star, 0.0, out=d_star)
        self._d_star = d_star
        self._ws = Workspace()

    @property
    def n_landmarks(self) -> int:
        return int(self._idx.size)

    @property
    def anchor_idx(self) -> np.ndarray:
        """Sorted anchor row indices (a copy)."""
        return self._idx.copy()

    def _block(self) -> int:
        return _block_rows(self._m, self.n_landmarks)

    def loss(self, X_tilde: np.ndarray) -> float:
        """Scaled landmark fairness loss, O(M * L * N)."""
        idx = self._idx
        A = X_tilde[idx]
        aa = np.einsum("mn,mn->m", X_tilde, X_tilde)
        a_anchor = aa[idx]
        block = self._block()
        eb = self._ws.take("eb", (block, idx.size))
        acc = CompensatedSum()
        for start in range(0, self._m, block):
            stop = min(start + block, self._m)
            E = eb[: stop - start]
            np.matmul(X_tilde[start:stop], A.T, out=E)
            E *= -2.0
            E += aa[start:stop, None]
            E += a_anchor[None, :]
            np.maximum(E, 0.0, out=E)  # distance domain, like the others
            E -= self._d_star[start:stop]
            acc.add(np.einsum("ml,ml->", E, E))
        return self.scale * acc.result

    def loss_and_grad_x(
        self, X_tilde: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """(scaled loss, ``dL_fair/dX_tilde``) — gradient inputs.

        The gradient is returned in a reusable thread-local buffer;
        consume (or scale in place) before the next call.
        """
        m, n = X_tilde.shape
        idx = self._idx
        ws = self._ws
        A = np.take(X_tilde, idx, axis=0, out=ws.take("anchors", (idx.size, n)))
        aa = np.einsum("mn,mn->m", X_tilde, X_tilde)
        a_anchor = aa[idx]
        block = self._block()
        eb = ws.take("eb", (block, idx.size))
        G = ws.take("g_fair", (m, n))
        col_sum = np.zeros(idx.size, dtype=np.float64)
        EtX = np.zeros((idx.size, n), dtype=np.float64)
        acc = CompensatedSum()
        w4 = 4.0 * self.scale
        for start in range(0, m, block):
            stop = min(start + block, m)
            Xb = X_tilde[start:stop]
            E = eb[: stop - start]
            np.matmul(Xb, A.T, out=E)
            E *= -2.0
            E += aa[start:stop, None]
            E += a_anchor[None, :]
            np.maximum(E, 0.0, out=E)
            E -= self._d_star[start:stop]
            acc.add(np.einsum("ml,ml->", E, E))
            # Row role: 4 w (r_i x_i - (E A)_i) for the block's rows.
            row = E.sum(axis=1)
            Gb = np.matmul(E, A, out=G[start:stop])
            Gb *= -1.0
            Gb += row[:, None] * Xb
            Gb *= w4
            # Anchor-role moments, accumulated across blocks.
            col_sum += E.sum(axis=0)
            EtX += E.T @ Xb
        # Anchor role: -4 w ((E^T X)_l - c_l a_l) added onto anchor rows.
        EtX -= col_sum[:, None] * A
        EtX *= w4
        G[idx] -= EtX
        return self.scale * acc.result, G
