"""Shared low-level utilities: RNG handling, validation, math kernels."""

from repro.utils.kernels import (
    FullPairFairness,
    PairScatter,
    Workspace,
    softmax_neg_inplace,
    sq_dist_backward,
    weighted_sq_dists_gemm,
    weighted_sq_dists_rowstable,
)
from repro.utils.rng import check_random_state, spawn_seeds
from repro.utils.validation import (
    check_binary_labels,
    check_matrix,
    check_protected_indices,
    check_vector,
)
from repro.utils.mathkit import (
    log_sum_exp,
    pairwise_sq_euclidean,
    sigmoid,
    softmax,
    weighted_minkowski_to_prototypes,
)

__all__ = [
    "FullPairFairness",
    "PairScatter",
    "Workspace",
    "softmax_neg_inplace",
    "sq_dist_backward",
    "weighted_sq_dists_gemm",
    "weighted_sq_dists_rowstable",
    "check_random_state",
    "spawn_seeds",
    "check_binary_labels",
    "check_matrix",
    "check_protected_indices",
    "check_vector",
    "log_sum_exp",
    "pairwise_sq_euclidean",
    "sigmoid",
    "softmax",
    "weighted_minkowski_to_prototypes",
]
