"""Plain-text table rendering for the benchmark harness.

The benchmark targets print rows that mirror the paper's tables; this
module renders aligned ASCII tables without any third-party dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def format_cell(value: Cell, precision: int = 2) -> str:
    """Render a single cell: floats to fixed precision, rest via str()."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: str = "",
    precision: int = 2,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows: List[List[str]] = [
        [format_cell(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_line(list(headers)))
    lines.append(sep)
    lines.extend(fmt_line(row) for row in str_rows)
    return "\n".join(lines)
