"""Random-number-generator plumbing.

Every stochastic component in the library accepts a ``random_state``
argument that may be ``None``, an integer seed, or a fully constructed
:class:`numpy.random.Generator`.  :func:`check_random_state` normalises
all three into a ``Generator`` so downstream code never has to branch.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.exceptions import ValidationError

RandomStateLike = Union[None, int, np.random.Generator]


def check_random_state(random_state: RandomStateLike = None) -> np.random.Generator:
    """Normalise ``random_state`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    random_state:
        ``None`` for a fresh nondeterministic generator, an ``int`` seed
        for a deterministic one, or an existing ``Generator`` which is
        returned unchanged.
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        if random_state < 0:
            raise ValidationError("random_state seed must be non-negative")
        return np.random.default_rng(int(random_state))
    raise ValidationError(
        f"random_state must be None, int or numpy Generator, got {type(random_state)!r}"
    )


def spawn_seeds(random_state: RandomStateLike, count: int) -> list:
    """Derive ``count`` independent child seeds from ``random_state``.

    Used by multi-restart optimisers so each restart is reproducible on
    its own while the whole ensemble is reproducible from one seed.
    """
    if count < 0:
        raise ValidationError("count must be non-negative")
    rng = check_random_state(random_state)
    return [int(seed) for seed in rng.integers(0, 2**31 - 1, size=count)]
