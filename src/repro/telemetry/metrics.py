"""Thread-safe metrics: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` is a namespace of named instruments.  Two
registries matter in practice:

* the **process-wide** registry (:func:`get_registry`) carries the
  library-level series — fit restarts, oracle builds and memo hits,
  executor tasks, shared-memory arena traffic;
* each :class:`~repro.serving.engine.InferenceEngine` owns a private
  registry for its serving series, so two engines in one process never
  mix their counters.

Three properties make the registry fit the worker-pool architecture:

* **mergeable snapshots** — :meth:`MetricsRegistry.snapshot` returns a
  plain JSON-safe dict; :func:`snapshot_diff` subtracts two snapshots
  and :meth:`MetricsRegistry.merge` adds a (delta) snapshot back in.
  Executor workers accumulate into their own process-local registry
  and ship per-task deltas back over their result pipes
  (:mod:`repro.core.executor`), where the parent reduces them — the
  parent's totals are then independent of how tasks were scheduled.
* **bucketed latency** — histograms never retain samples: observations
  land in fixed cumulative buckets, so p50/p95/p99 come from bucket
  interpolation at O(#buckets) memory regardless of traffic.
* **Prometheus exposition** — :func:`prometheus_text` renders one or
  more snapshots in the Prometheus text format (stdlib only), which is
  what ``GET /v1/metrics`` on the decision service serves.

Instrument handles are cheap to hold: resolve them once (e.g. in a
constructor) and call ``inc``/``observe`` on the hot path — each call
is one small-lock round trip.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ValidationError

#: Default latency buckets (seconds): 10 us to 2.5 s, roughly
#: logarithmic — wide enough for both the ~20 us single-record serving
#: path and multi-second fits.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5,
)

LabelsLike = Optional[Mapping[str, str]]


def _metric_key(name: str, labels: LabelsLike) -> str:
    """Flat snapshot key: ``name`` or ``name|k=v|k2=v2`` (sorted)."""
    if not labels:
        return name
    parts = "|".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}|{parts}"


def parse_metric_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Inverse of the snapshot key encoding: ``(name, labels)``."""
    if "|" not in key:
        return key, {}
    name, *pairs = key.split("|")
    return name, dict(pair.split("=", 1) for pair in pairs)


class Counter:
    """Monotonic counter (floats allowed: byte totals, seconds)."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValidationError("counters only move forward")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can move both ways (pool sizes, cache entries)."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram; no sample retention.

    ``bounds`` are the inclusive upper edges of the finite buckets; an
    implicit +Inf bucket catches the rest.  Quantiles are estimated by
    linear interpolation inside the bucket holding the target rank —
    exact to within one bucket width, O(1) memory forever.
    """

    __slots__ = ("bounds", "_counts", "_sum", "_count", "_lock")

    def __init__(self, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(float(b) for b in bounds)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValidationError(
                "histogram bounds must be strictly increasing and non-empty"
            )
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Bucket-interpolated q-quantile (NaN while empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValidationError("quantile must lie in [0, 1]")
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return float("nan")
        rank = q * total
        cumulative = 0
        for index, count in enumerate(counts):
            previous = cumulative
            cumulative += count
            if cumulative >= rank and count > 0:
                lower = 0.0 if index == 0 else self.bounds[index - 1]
                if index >= len(self.bounds):
                    return self.bounds[-1]  # +Inf bucket: clamp to last edge
                upper = self.bounds[index]
                fraction = (rank - previous) / count
                return lower + (upper - lower) * min(1.0, max(0.0, fraction))
        return self.bounds[-1]  # pragma: no cover - loop always returns

    def _state(self) -> Dict:
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
            }


class MetricsRegistry:
    """Named instruments + mergeable snapshots + Prometheus rendering."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument access (get-or-create, idempotent) -----------------

    def counter(self, name: str, labels: LabelsLike = None) -> Counter:
        key = _metric_key(name, labels)
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = self._counters[key] = Counter()
            return instrument

    def gauge(self, name: str, labels: LabelsLike = None) -> Gauge:
        key = _metric_key(name, labels)
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = self._gauges[key] = Gauge()
            return instrument

    def histogram(
        self,
        name: str,
        labels: LabelsLike = None,
        *,
        bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        key = _metric_key(name, labels)
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = self._histograms[key] = Histogram(bounds)
            return instrument

    # -- snapshots ------------------------------------------------------

    def snapshot(self) -> Dict:
        """JSON-safe state of every instrument (see :func:`snapshot_diff`)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {key: c.value for key, c in counters.items()},
            "gauges": {key: g.value for key, g in gauges.items()},
            "histograms": {key: h._state() for key, h in histograms.items()},
        }

    def merge(self, snapshot: Optional[Dict]) -> None:
        """Fold a snapshot (typically a delta) into this registry.

        Counters and histogram buckets add; gauges take the incoming
        value (last-write-wins — a worker's gauge describes the
        worker's current state, not an increment).
        """
        if not snapshot:
            return
        for key, value in snapshot.get("counters", {}).items():
            if value:
                self.counter(key).inc(value)
        for key, value in snapshot.get("gauges", {}).items():
            self.gauge(key).set(value)
        for key, state in snapshot.get("histograms", {}).items():
            histogram = self.histogram(key, bounds=state["bounds"])
            if list(histogram.bounds) != list(state["bounds"]):
                raise ValidationError(
                    f"histogram {key!r} merge with different bucket bounds"
                )
            with histogram._lock:
                for index, count in enumerate(state["counts"]):
                    histogram._counts[index] += count
                histogram._sum += state["sum"]
                histogram._count += state["count"]

    def value(self, name: str, labels: LabelsLike = None) -> float:
        """Current value of a counter or gauge (0.0 when absent)."""
        key = _metric_key(name, labels)
        with self._lock:
            if key in self._counters:
                instrument = self._counters[key]
            elif key in self._gauges:
                instrument = self._gauges[key]
            else:
                return 0.0
        return instrument.value

    def reset(self) -> None:
        """Drop every instrument (tests and benchmark isolation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def to_prometheus(self) -> str:
        """This registry alone in Prometheus text format."""
        return prometheus_text(self.snapshot())


def snapshot_diff(current: Dict, previous: Optional[Dict]) -> Dict:
    """``current - previous``, dropping all-zero entries.

    The worker-side half of delta shipping: a worker snapshots after
    each task, diffs against what it last shipped, and sends only the
    change.  Gauges pass through at their current value (they are not
    cumulative).  An empty diff returns ``{}`` so callers can skip the
    pickle entirely.
    """
    previous = previous or {}
    diff: Dict = {}
    counters = {
        key: value - previous.get("counters", {}).get(key, 0.0)
        for key, value in current.get("counters", {}).items()
    }
    counters = {key: value for key, value in counters.items() if value}
    if counters:
        diff["counters"] = counters
    gauges = {
        key: value
        for key, value in current.get("gauges", {}).items()
        if previous.get("gauges", {}).get(key) != value
    }
    if gauges:
        diff["gauges"] = gauges
    histograms: Dict = {}
    for key, state in current.get("histograms", {}).items():
        prev = previous.get("histograms", {}).get(key)
        if prev is None:
            if state["count"]:
                histograms[key] = state
            continue
        delta_counts = [
            c - p for c, p in zip(state["counts"], prev["counts"])
        ]
        if any(delta_counts):
            histograms[key] = {
                "bounds": state["bounds"],
                "counts": delta_counts,
                "sum": state["sum"] - prev["sum"],
                "count": state["count"] - prev["count"],
            }
    if histograms:
        diff["histograms"] = histograms
    return diff


def merge_snapshots(snapshots: Sequence[Dict]) -> Dict:
    """Reduce snapshots into one (counters/buckets add, gauges last-win)."""
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.merge(snapshot)
    return merged.snapshot()


def sum_counter(snapshot: Dict, name: str) -> float:
    """Sum one counter series across every label combination.

    The reduction half of :func:`relabel_snapshot`: after worker deltas
    are merged under ``worker="<i>"`` labels, the unlabelled total of a
    series (e.g. ``serving_requests_total``) is the sum over all its
    labelled keys.  Resilience series added by the PR 9 dispatcher
    (``serving_deadline_kills_total``, ``serving_shed_total``,
    ``serving_worker_evictions_total``, ...) reduce the same way.
    """
    return sum(
        value
        for key, value in snapshot.get("counters", {}).items()
        if parse_metric_key(key)[0] == name
    )


def sum_gauge(snapshot: Dict, name: str) -> float:
    """Sum one gauge series across every label combination.

    Meaningful for additive gauges (per-worker cache entry counts, live
    slot counts); last-write-wins gauges should be read per label.
    """
    return sum(
        value
        for key, value in snapshot.get("gauges", {}).items()
        if parse_metric_key(key)[0] == name
    )


def relabel_snapshot(snapshot: Optional[Dict], labels: Mapping[str, str]) -> Dict:
    """Fold ``labels`` into every metric key of ``snapshot``.

    The serving dispatcher ships each engine worker's registry delta
    back to the parent and merges it under a ``worker="<i>"`` label, so
    one ``/v1/metrics`` scrape exposes per-worker series while the
    unlabeled totals remain derivable by summing over the label.  Keys
    that already carry one of ``labels`` keep their own value (a verb
    label set in the worker is never overwritten).
    """
    if not snapshot:
        return {}
    if not labels:
        return snapshot

    def rekey(key: str) -> str:
        name, existing = parse_metric_key(key)
        merged_labels = dict(labels)
        merged_labels.update(existing)
        return _metric_key(name, merged_labels)

    relabeled: Dict = {}
    for section in ("counters", "gauges", "histograms"):
        if section in snapshot:
            relabeled[section] = {
                rekey(key): value for key, value in snapshot[section].items()
            }
    return relabeled


def _prometheus_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(*snapshots: Dict) -> str:
    """Render snapshots in the Prometheus text exposition format.

    Multiple snapshots are merged first (e.g. an engine's serving
    registry plus the process-wide library registry), so one scrape
    endpoint covers every series in the process.
    """
    merged = (
        snapshots[0] if len(snapshots) == 1 else merge_snapshots(list(snapshots))
    )
    lines: List[str] = []
    typed: set = set()

    def type_line(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for key in sorted(merged.get("counters", {})):
        name, labels = parse_metric_key(key)
        type_line(name, "counter")
        lines.append(
            f"{name}{_prometheus_labels(labels)} "
            f"{_format_value(merged['counters'][key])}"
        )
    for key in sorted(merged.get("gauges", {})):
        name, labels = parse_metric_key(key)
        type_line(name, "gauge")
        lines.append(
            f"{name}{_prometheus_labels(labels)} "
            f"{_format_value(merged['gauges'][key])}"
        )
    for key in sorted(merged.get("histograms", {})):
        name, labels = parse_metric_key(key)
        state = merged["histograms"][key]
        type_line(name, "histogram")
        cumulative = 0
        for bound, count in zip(state["bounds"], state["counts"]):
            cumulative += count
            bucket_labels = dict(labels)
            bucket_labels["le"] = _format_value(bound)
            lines.append(
                f"{name}_bucket{_prometheus_labels(bucket_labels)} {cumulative}"
            )
        bucket_labels = dict(labels)
        bucket_labels["le"] = "+Inf"
        lines.append(
            f"{name}_bucket{_prometheus_labels(bucket_labels)} {state['count']}"
        )
        lines.append(
            f"{name}_sum{_prometheus_labels(labels)} "
            f"{_format_value(state['sum'])}"
        )
        lines.append(
            f"{name}_count{_prometheus_labels(labels)} {state['count']}"
        )
    return "\n".join(lines) + "\n"


_REGISTRY: Optional[MetricsRegistry] = None
_REGISTRY_LOCK = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide registry (library-level series)."""
    global _REGISTRY
    with _REGISTRY_LOCK:
        if _REGISTRY is None:
            _REGISTRY = MetricsRegistry()
        return _REGISTRY
