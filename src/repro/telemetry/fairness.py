"""Serving-side fairness drift monitor (sliding window).

The offline pipeline proves fairness on the training distribution;
:class:`FairnessMonitor` checks that it survives contact with live
traffic.  The serving engine feeds every ``decide`` call into
:meth:`~FairnessMonitor.observe`; the monitor keeps the last ``window``
served records and computes, on demand:

* **consistency (yNN)** of the served decisions over the non-protected
  features — the paper's individual-fairness metric
  (:func:`repro.metrics.individual.consistency`) applied to the live
  window instead of a test split;
* **group decision rates** per protected-attribute value and the
  max-min **rate gap** — the group-fairness view of the same window.

The first window that reaches ``min_records`` is frozen as the
**baseline**; afterwards a consistency drop or a rate-gap widening
beyond the configured tolerances raises the corresponding drift flag.
Flags surface in three places: the ``fairness`` block of
``/v1/stats``, ``fairness_*`` gauges in the engine's metrics registry
(scraped via ``/v1/metrics``), and a WARNING log record on the rising
edge of either flag.

Metrics are cached per window state; the O(window²) consistency kernel
reruns only when new records arrived since the last call, so frequent
``/v1/stats`` polling is cheap.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.metrics.individual import consistency
from repro.telemetry.logs import get_logger
from repro.telemetry.metrics import MetricsRegistry

logger = get_logger("telemetry.fairness")


class FairnessMonitor:
    """Sliding-window consistency + decision-rate drift detection.

    Parameters
    ----------
    protected_indices:
        Column indices excluded from the consistency neighbourhood
        (the same indices the model treats as protected).
    window:
        Number of most-recent served records retained.
    k:
        Neighbourhood size for the yNN consistency metric; windows
        with fewer than ``k + 2`` records report no consistency yet.
    min_records:
        Window size at which the baseline freezes and drift checks
        begin.
    consistency_drop:
        Absolute drop of window consistency below baseline that flags
        ``consistency_drift``.
    rate_gap_shift:
        Absolute widening of the max-min group decision-rate gap above
        baseline that flags ``rate_drift``.
    check_every:
        Recompute the (O(window²)) metrics automatically once this
        many new records accumulated since the last computation;
        between refreshes :meth:`drift_flags` answers from the cache,
        so the serving hot path never pays the consistency kernel.
    registry:
        Optional registry that receives ``fairness_*`` gauges on every
        metrics refresh (the engine passes its own).
    """

    def __init__(
        self,
        protected_indices: Sequence[int],
        *,
        window: int = 512,
        k: int = 10,
        min_records: int = 50,
        consistency_drop: float = 0.10,
        rate_gap_shift: float = 0.15,
        check_every: int = 64,
        registry: Optional[MetricsRegistry] = None,
    ):
        if window < 2:
            raise ValidationError("fairness window needs at least 2 records")
        if k < 1:
            raise ValidationError("consistency neighbourhood k must be >= 1")
        if min_records < 2:
            raise ValidationError("min_records must be >= 2")
        self.protected_indices = sorted(int(i) for i in protected_indices)
        self.window = int(window)
        self.k = int(k)
        self.min_records = int(min_records)
        self.consistency_drop = float(consistency_drop)
        self.rate_gap_shift = float(rate_gap_shift)
        if check_every < 1:
            raise ValidationError("check_every must be >= 1")
        self.check_every = int(check_every)
        self._last_check = 0
        self._registry = registry
        self._rows: deque = deque(maxlen=self.window)
        self._groups: deque = deque(maxlen=self.window)
        self._decisions: deque = deque(maxlen=self.window)
        self._seen = 0
        self._cached: Optional[Dict] = None
        self._cached_at = -1
        self._baseline: Optional[Dict] = None
        self._flagged = False

    def observe(
        self,
        X: np.ndarray,
        groups: Sequence,
        decisions: Sequence[float],
    ) -> None:
        """Record served rows (features, protected value, decision)."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        groups = np.asarray(groups).reshape(-1)
        decisions = np.asarray(decisions, dtype=np.float64).reshape(-1)
        if not (X.shape[0] == groups.size == decisions.size):
            raise ValidationError(
                "observe needs matching X rows, groups and decisions"
            )
        for row, group, decision in zip(X, groups, decisions):
            self._rows.append(row)
            self._groups.append(group)
            self._decisions.append(float(decision))
        self._seen += X.shape[0]
        if self._seen - self._last_check >= self.check_every:
            self._last_check = self._seen
            self.metrics()

    @property
    def n_seen(self) -> int:
        """Total records observed (window holds the last ``window``)."""
        return self._seen

    def _compute(self) -> Dict:
        rows = np.asarray(self._rows, dtype=np.float64)
        decisions = np.asarray(self._decisions, dtype=np.float64)
        groups = list(self._groups)
        n = rows.shape[0]
        metrics: Dict = {
            "window_records": n,
            "records_seen": self._seen,
            "consistency": None,
            "decision_rates": {},
            "rate_gap": None,
        }
        if n > self.k + 1:
            protected = set(self.protected_indices)
            keep = [j for j in range(rows.shape[1]) if j not in protected]
            if keep:
                metrics["consistency"] = float(
                    consistency(rows[:, keep], decisions, k=self.k)
                )
        if n:
            rates: Dict[str, float] = {}
            for group in sorted(set(groups), key=str):
                mask = np.array([g == group for g in groups])
                rates[str(group)] = float(decisions[mask].mean())
            metrics["decision_rates"] = rates
            if len(rates) > 1:
                values = list(rates.values())
                metrics["rate_gap"] = float(max(values) - min(values))
        return metrics

    def metrics(self) -> Dict:
        """Current window metrics + baseline + drift flags (cached)."""
        if self._cached is None or self._cached_at != self._seen:
            current = self._compute()
            if (
                self._baseline is None
                and current["window_records"] >= self.min_records
            ):
                self._baseline = {
                    "consistency": current["consistency"],
                    "rate_gap": current["rate_gap"],
                    "records_seen": self._seen,
                }
            current["baseline"] = self._baseline
            current["drift"] = self._drift_flags(current)
            self._publish(current)
            self._warn_on_rising_edge(current)
            self._cached = current
            self._cached_at = self._seen
        return dict(self._cached)

    def _drift_flags(self, current: Dict) -> Dict:
        flags = {"consistency_drift": False, "rate_drift": False, "any": False}
        baseline = self._baseline
        if baseline is None:
            return flags
        base_consistency = baseline.get("consistency")
        now_consistency = current.get("consistency")
        if base_consistency is not None and now_consistency is not None:
            flags["consistency_drift"] = bool(
                base_consistency - now_consistency > self.consistency_drop
            )
        base_gap = baseline.get("rate_gap")
        now_gap = current.get("rate_gap")
        if base_gap is not None and now_gap is not None:
            flags["rate_drift"] = bool(now_gap - base_gap > self.rate_gap_shift)
        flags["any"] = flags["consistency_drift"] or flags["rate_drift"]
        return flags

    def _publish(self, current: Dict) -> None:
        if self._registry is None:
            return
        registry = self._registry
        registry.gauge("fairness_window_records").set(current["window_records"])
        if current["consistency"] is not None:
            registry.gauge("fairness_consistency").set(current["consistency"])
        if current["rate_gap"] is not None:
            registry.gauge("fairness_rate_gap").set(current["rate_gap"])
        for group, rate in current["decision_rates"].items():
            registry.gauge(
                "fairness_decision_rate", {"group": group}
            ).set(rate)
        registry.gauge("fairness_drift").set(
            1.0 if current["drift"]["any"] else 0.0
        )

    def _warn_on_rising_edge(self, current: Dict) -> None:
        flagged = current["drift"]["any"]
        if flagged and not self._flagged:
            logger.warning(
                "fairness drift detected",
                extra={
                    "consistency": current["consistency"],
                    "rate_gap": current["rate_gap"],
                    "baseline": self._baseline,
                    "window_records": current["window_records"],
                },
            )
        self._flagged = flagged

    def drift_flags(self) -> Dict:
        """Last computed drift flags, without recomputing.

        The cheap read for the serving hot path: :meth:`observe`
        refreshes the cache every ``check_every`` records, and
        :meth:`metrics` (the ``/v1/stats`` path) refreshes on demand.
        """
        if self._cached is not None:
            return dict(self._cached["drift"])
        return {"consistency_drift": False, "rate_drift": False, "any": False}

    def drifting(self) -> bool:
        """True while any drift flag is raised."""
        return bool(self.metrics()["drift"]["any"])

    def reset_baseline(self) -> None:
        """Forget the baseline; the next full window freezes a new one."""
        self._baseline = None
        self._flagged = False
        self._cached = None
        self._cached_at = -1
