"""Lightweight span tracing for fit and serving phases.

A :class:`Tracer` records named, nested spans with
``time.perf_counter`` timestamps.  It is **off by default** — a
disabled tracer's :meth:`~Tracer.span` returns a shared no-op context
manager, so instrumentation left in hot paths (the serving dispatch
loop, per-restart L-BFGS) costs one attribute load and one ``if``.

Enabled, each span captures name, start/end on the perf_counter
timeline, nesting depth, parent span name, pid and thread, plus any
caller-supplied metadata.  Finished spans land in a bounded deque;
:meth:`~Tracer.timeline` returns them as JSON-safe dicts sorted by
start time and :meth:`~Tracer.dump_json` writes the timeline to a
file — ``benchmarks/run_bench.py`` dumps a fit trace this way for the
CI workflow artifact.

Worker processes get their own process-local tracer (module globals do
not survive ``spawn``, and fork copies enablement at pool-creation
time).  The executor drains worker spans after each task and ships
them back with the metrics delta, so :func:`get_tracer` in the parent
ends up holding the cross-process timeline: perf_counter reads
``CLOCK_MONOTONIC`` on Linux, which is consistent across processes,
so parent and worker spans interleave correctly on one axis.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from time import perf_counter
from typing import Dict, List, Optional

#: Cap on retained finished spans; oldest fall off first.
MAX_SPANS = 10_000


class _NoopSpan:
    """Shared do-nothing context manager for disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class _Span:
    """One live span (context manager); records itself on exit."""

    __slots__ = ("_tracer", "name", "meta", "start", "depth", "parent")

    def __init__(self, tracer: "Tracer", name: str, meta: Optional[Dict]):
        self._tracer = tracer
        self.name = name
        self.meta = meta
        self.start = 0.0
        self.depth = 0
        self.parent: Optional[str] = None

    def __enter__(self) -> "_Span":
        stack = self._tracer._stack()
        self.depth = len(stack)
        self.parent = stack[-1] if stack else None
        stack.append(self.name)
        self.start = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        end = perf_counter()
        stack = self._tracer._stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        self._tracer._record(self, end)


class Tracer:
    """Collects nested spans when enabled; free when disabled."""

    def __init__(self, *, max_spans: int = MAX_SPANS):
        self.enabled = False
        self._spans: deque = deque(maxlen=max_spans)
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **meta):
        """Context manager timing one phase (no-op while disabled)."""
        if not self.enabled:
            return _NOOP_SPAN
        return _Span(self, name, meta or None)

    def _record(self, span: _Span, end: float) -> None:
        entry = {
            "name": span.name,
            "start_s": span.start,
            "end_s": end,
            "duration_s": end - span.start,
            "depth": span.depth,
            "parent": span.parent,
            "pid": os.getpid(),
            "thread": threading.current_thread().name,
        }
        if span.meta:
            entry["meta"] = span.meta
        with self._lock:
            self._spans.append(entry)

    def ingest(self, spans: List[Dict]) -> None:
        """Adopt spans recorded elsewhere (worker-shipped timelines)."""
        if not spans:
            return
        with self._lock:
            self._spans.extend(spans)

    def drain(self) -> List[Dict]:
        """Remove and return every finished span (worker-side shipping)."""
        with self._lock:
            spans = list(self._spans)
            self._spans.clear()
        return spans

    def timeline(self) -> List[Dict]:
        """Finished spans as JSON-safe dicts, sorted by start time."""
        with self._lock:
            spans = list(self._spans)
        return sorted(spans, key=lambda s: s["start_s"])

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def dump_json(self, path: str) -> None:
        """Write the timeline to ``path`` as a JSON array."""
        with open(path, "w") as handle:
            json.dump(self.timeline(), handle, indent=2)
            handle.write("\n")


_TRACER: Optional[Tracer] = None
_TRACER_LOCK = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide tracer (created lazily, disabled by default)."""
    global _TRACER
    with _TRACER_LOCK:
        if _TRACER is None:
            _TRACER = Tracer()
        return _TRACER


def enable_tracing() -> Tracer:
    """Switch the process-wide tracer on and return it."""
    tracer = get_tracer()
    tracer.enabled = True
    return tracer


def disable_tracing() -> None:
    tracer = get_tracer()
    tracer.enabled = False
