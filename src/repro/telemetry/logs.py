"""Structured logging for the repro package (stdlib ``logging`` only).

Every module logs through ``logging.getLogger("repro...")`` as usual;
this module owns the one place handlers are attached.
:func:`configure_logging` installs a single stderr handler on the
``"repro"`` root with either a human-readable line format or
line-delimited JSON (``json_format=True``), and is idempotent — calling
it again reconfigures instead of stacking handlers.  The CLI exposes it
as ``--log-level`` / ``--log-json`` on every verb.

Structured fields ride in ``extra={...}`` on any log call; the JSON
formatter lifts them to top-level keys next to ``ts``, ``level``,
``logger`` and ``msg`` (the access log in :mod:`repro.serving.service`
emits method/path/status/latency_ms this way).  Unconfigured, the
package stays quiet: a :class:`logging.NullHandler` sits on the root
logger so library users who never call :func:`configure_logging` see
no "no handler" warnings and no output.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Optional

#: Name of the package root logger every repro module hangs off.
ROOT_LOGGER = "repro"

#: ``LogRecord`` attributes that are plumbing, not payload — anything
#: else on a record is a structured field supplied via ``extra=``.
_RESERVED = frozenset(
    logging.LogRecord(
        "", 0, "", 0, "", (), None
    ).__dict__
) | {"message", "asctime", "taskName"}


class JsonFormatter(logging.Formatter):
    """One JSON object per line: ts, level, logger, msg + extras."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                payload[key] = value
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


class LineFormatter(logging.Formatter):
    """Human-readable lines with structured extras appended as k=v."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime(
            "%H:%M:%S", time.localtime(record.created)
        )
        base = (
            f"{stamp} {record.levelname:<7} "
            f"{record.name}: {record.getMessage()}"
        )
        extras = [
            f"{key}={value}"
            for key, value in record.__dict__.items()
            if key not in _RESERVED and not key.startswith("_")
        ]
        if extras:
            base = f"{base} [{' '.join(extras)}]"
        if record.exc_info:
            base = f"{base}\n{self.formatException(record.exc_info)}"
        return base


def get_logger(name: str) -> logging.Logger:
    """A child of the package root logger (``repro.<name>``)."""
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def configure_logging(
    level: str = "WARNING",
    *,
    json_format: bool = False,
    stream=None,
) -> logging.Logger:
    """Attach the package's single handler (idempotent).

    Parameters
    ----------
    level:
        Threshold name (``DEBUG``/``INFO``/...); case-insensitive.
    json_format:
        Emit line-delimited JSON instead of human-readable lines.
    stream:
        Target stream (defaults to ``sys.stderr``); tests pass a
        ``StringIO``.
    """
    root = logging.getLogger(ROOT_LOGGER)
    numeric = logging.getLevelName(str(level).upper())
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level: {level!r}")
    for handler in [h for h in root.handlers if getattr(h, "_repro_handler", False)]:
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler._repro_handler = True  # type: ignore[attr-defined]
    handler.setFormatter(JsonFormatter() if json_format else LineFormatter())
    root.addHandler(handler)
    root.setLevel(numeric)
    root.propagate = False
    return root


# Library default: silent unless configure_logging() is called.
logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())
