"""Unified telemetry: metrics, tracing, structured logs, drift watch.

Four small, stdlib-only layers that every other subsystem reports
through:

* :mod:`repro.telemetry.metrics` — thread-safe counters / gauges /
  fixed-bucket histograms with **mergeable snapshots** (workers ship
  deltas over their pipes, the parent reduces) and Prometheus text
  rendering for ``GET /v1/metrics``;
* :mod:`repro.telemetry.tracing` — perf_counter span tracing across
  fit phases and the serving request path, exportable as a JSON
  timeline; disabled-by-default and ~free when off;
* :mod:`repro.telemetry.logs` — structured (optionally JSON) logging
  with one ``configure_logging()`` entry point, surfaced as
  ``--log-level`` / ``--log-json`` on every CLI verb;
* :mod:`repro.telemetry.fairness` — sliding-window consistency and
  group decision-rate monitoring of served traffic with drift flags.
"""

from repro.telemetry.fairness import FairnessMonitor
from repro.telemetry.logs import configure_logging, get_logger
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    get_registry,
    merge_snapshots,
    parse_metric_key,
    prometheus_text,
    relabel_snapshot,
    snapshot_diff,
    sum_counter,
    sum_gauge,
)
from repro.telemetry.tracing import (
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "FairnessMonitor",
    "MetricsRegistry",
    "Tracer",
    "configure_logging",
    "disable_tracing",
    "enable_tracing",
    "get_logger",
    "get_registry",
    "get_tracer",
    "merge_snapshots",
    "parse_metric_key",
    "prometheus_text",
    "relabel_snapshot",
    "snapshot_diff",
    "sum_counter",
    "sum_gauge",
]
